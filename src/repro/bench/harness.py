"""Experiment harness: the workload grid of the paper's evaluation.

One process-wide :class:`Harness` memoizes simulator and CPU-model runs
so figures that share cells (Fig. 14 and Fig. 16, for instance) pay for
each simulation once.  The per-figure dataset selections follow the
paper's x-axes exactly (e.g. 5-CL only on As and Pa).

Set the ``REPRO_BENCH_QUICK`` environment variable to restrict every
sweep to its cheapest cells — useful while iterating.  Set
``REPRO_BENCH_TELEMETRY`` to a directory (or pass ``telemetry_dir``) to
write one machine-readable report per simulated cell plus a
``BENCH_summary.json`` roll-up, making the perf trajectory diffable
across PRs with ``flexminer stats``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from ..compiler import compile_motifs, compile_pattern
from ..engine import MiningResult
from ..graph import CSRGraph, load_dataset
from ..hw import FlexMinerConfig, SimReport, simulate
from ..obs import (
    MetricsRegistry,
    NULL_PROFILER,
    get_logger,
    make_report,
    write_report,
)
from ..patterns import diamond, four_cycle, k_clique, triangle
from .cpumodel import CpuModelConfig, graphzero_time

log = get_logger("bench.harness")

__all__ = [
    "APP_PLANS",
    "FIG13_CELLS",
    "FIG14_CELLS",
    "FIG15_CELLS",
    "FIG16_CELLS",
    "Harness",
    "get_harness",
]


def _plan(app: str):
    builders = {
        "TC": lambda: compile_pattern(triangle()),
        "4-CL": lambda: compile_pattern(k_clique(4)),
        "5-CL": lambda: compile_pattern(k_clique(5)),
        "SL-4cycle": lambda: compile_pattern(four_cycle()),
        "SL-diamond": lambda: compile_pattern(diamond()),
        "3-MC": lambda: compile_motifs(3),
    }
    return builders[app]()


APP_PLANS = ("TC", "4-CL", "5-CL", "SL-4cycle", "SL-diamond", "3-MC")

#: Per-figure (app -> datasets) grids, matching the paper's x-axes.
FIG13_CELLS: Dict[str, List[str]] = {
    "TC": ["As", "Mi", "Pa", "Yo", "Lj"],
    "4-CL": ["As", "Mi", "Pa", "Yo"],
    "5-CL": ["As", "Pa"],
    "SL-4cycle": ["As", "Mi", "Pa"],
    "SL-diamond": ["As", "Mi", "Pa"],
    "3-MC": ["As", "Mi", "Pa", "Yo"],
}
FIG14_CELLS: Dict[str, List[str]] = {
    "TC": ["As", "Mi", "Pa", "Yo", "Lj"],
    "4-CL": ["As", "Mi", "Pa", "Yo"],
    "5-CL": ["As", "Pa"],
    "SL-4cycle": ["As", "Mi", "Pa"],
    "SL-diamond": ["As", "Mi", "Pa"],
    "3-MC": ["As", "Mi", "Pa"],
}
#: Fig. 15 scales PEs 1..64; we sweep a representative cell per app.
FIG15_CELLS: Dict[str, List[str]] = {
    "TC": ["As", "Mi", "Pa"],
    "4-CL": ["As", "Mi", "Pa"],
}
#: Fig. 16 reports NoC/DRAM traffic for the c-map-sensitive apps.
FIG16_CELLS: Dict[str, List[str]] = {
    "TC": ["As", "Mi", "Pa"],
    "4-CL": ["As", "Mi", "Pa"],
    "SL-4cycle": ["As", "Mi", "Pa"],
    "SL-diamond": ["As", "Mi", "Pa"],
}

_QUICK_ENV = "REPRO_BENCH_QUICK"
_TELEMETRY_ENV = "REPRO_BENCH_TELEMETRY"


def _sim_cell_config(app: str, num_pes: int, cmap_bytes: int) -> FlexMinerConfig:
    """The per-cell simulator configuration the harness always uses."""
    split = None if app == "3-MC" else Harness.TASK_SPLIT_DEGREE
    return FlexMinerConfig(
        num_pes=num_pes,
        cmap_bytes=cmap_bytes,
        task_split_degree=split,
    )


def _sim_cell_worker(key: Tuple) -> Tuple[Tuple, Dict[str, object]]:
    """Pool worker: run one harness cell with the serial simulator.

    Cells are mutually independent simulations, so running them in
    separate processes is bit-identical to running them one by one —
    the report crosses back as its ``as_dict`` payload.
    """
    app, dataset, num_pes, cmap_bytes = key
    config = _sim_cell_config(app, num_pes, cmap_bytes)
    report = simulate(load_dataset(dataset), _plan(app), config)
    return key, report.as_dict()


def quick_mode() -> bool:
    return bool(os.environ.get(_QUICK_ENV))


def restrict(cells: Dict[str, List[str]]) -> Dict[str, List[str]]:
    """Quick mode: only the cheapest dataset per app."""
    if not quick_mode():
        return cells
    return {app: datasets[:1] for app, datasets in cells.items()}


class Harness:
    """Memoizing runner over (app, dataset, hardware config) cells.

    ``metrics`` counts runs vs cache hits and tracks cell-cycle
    distributions; ``telemetry_dir`` (default: the
    ``REPRO_BENCH_TELEMETRY`` environment variable) makes every fresh
    simulation write a per-cell JSON report, with
    :meth:`write_summary` producing the cross-PR ``BENCH_summary.json``.
    ``profiler`` (a :class:`repro.obs.PhaseProfiler`) attributes plan
    compilation, graph loads and fresh cell runs to phases; it is
    forwarded into the simulator and never changes any report.
    """

    def __init__(
        self,
        cpu_config: Optional[CpuModelConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        telemetry_dir: Optional[str] = None,
        profiler=None,
    ) -> None:
        self.cpu_config = cpu_config or CpuModelConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        if telemetry_dir is None:
            telemetry_dir = os.environ.get(_TELEMETRY_ENV) or None
        self.telemetry_dir = telemetry_dir
        self._plans: Dict[str, object] = {}
        self._sim_wall_s = 0.0
        self._sim_cells = 0
        self._sim_cache: Dict[Tuple, SimReport] = {}
        self._cpu_cache: Dict[Tuple, Tuple[float, MiningResult]] = {}
        self._engine_cache: Dict[Tuple, Tuple[float, MiningResult]] = {}
        self._stream_cache: Dict[Tuple, Dict[str, object]] = {}
        self._served_stream_cache: Dict[Tuple, Dict[str, object]] = {}

    def plan(self, app: str):
        if app not in self._plans:
            with self.profiler.phase("compile", app=app):
                self._plans[app] = _plan(app)
        return self._plans[app]

    def graph(self, dataset: str) -> CSRGraph:
        with self.profiler.phase("load-graph", dataset=dataset):
            return load_dataset(dataset)

    #: Depth-1 slice size for straggler-task splitting.  The paper's
    #: full-size inputs provide millions of tasks per figure cell; the
    #: scaled stand-ins do not, so one power-law hub can serialize a
    #: schedule and mask PE scaling.  Splitting hub tasks restores the
    #: paper's task-abundance regime (DESIGN.md §2; the ablation bench
    #: quantifies the effect).  Multi-pattern plans run unsplit.
    TASK_SPLIT_DEGREE = 32

    def sim(
        self,
        app: str,
        dataset: str,
        *,
        num_pes: int = 64,
        cmap_bytes: int = 8 * 1024,
        parallel: Optional[int] = None,
    ) -> SimReport:
        """Simulate one cell (memoized).

        ``parallel`` spreads the trace phase of a fresh simulation over
        that many worker processes
        (:func:`repro.hw.parallel_sim.simulate_parallel`); the report —
        and therefore the memo cache — is bit-identical either way, so
        the cache key ignores it.
        """
        key = (app, dataset, num_pes, cmap_bytes)
        if key not in self._sim_cache:
            config = _sim_cell_config(app, num_pes, cmap_bytes)
            log.debug(
                "sim cell %s/%s pes=%d cmap=%dB", app, dataset,
                num_pes, cmap_bytes,
            )
            self.metrics.counter("bench.sim_runs").inc()
            start = time.perf_counter()
            if parallel is not None and parallel > 1:
                from ..hw.parallel_sim import simulate_parallel

                report = simulate_parallel(
                    self.graph(dataset), self.plan(app), config,
                    workers=parallel, profiler=self.profiler,
                )
            else:
                with self.profiler.phase(
                    "simulate", app=app, dataset=dataset
                ):
                    report = simulate(
                        self.graph(dataset), self.plan(app), config
                    )
            self._account_sim_wall(time.perf_counter() - start, cells=1)
            self.metrics.histogram("bench.sim_cycles").observe(report.cycles)
            self._sim_cache[key] = report
            if self.telemetry_dir:
                self._write_cell(key, report)
        else:
            self.metrics.counter("bench.sim_cache_hits").inc()
        return self._sim_cache[key]

    def sim_many(
        self,
        cells: List[Tuple[str, str, int, int]],
        *,
        workers: Optional[int] = None,
    ) -> Dict[Tuple, SimReport]:
        """Simulate many (app, dataset, num_pes, cmap_bytes) cells.

        Fresh cells run in a process pool (cells are independent
        simulations, so the per-cell reports are bit-identical to
        serial ``sim()`` calls) and land in the same memo cache.
        Returns the full key→report mapping for the requested cells.
        """
        fresh = [
            key for key in dict.fromkeys(tuple(c) for c in cells)
            if key not in self._sim_cache
        ]
        if workers is None:
            workers = os.cpu_count() or 1
        if fresh:
            start = time.perf_counter()
            if workers > 1 and len(fresh) > 1:
                import multiprocessing as mp

                try:
                    ctx = mp.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX
                    ctx = mp.get_context("spawn")
                with ctx.Pool(min(workers, len(fresh))) as pool:
                    results = pool.map(_sim_cell_worker, fresh)
            else:
                results = [_sim_cell_worker(key) for key in fresh]
            self._account_sim_wall(
                time.perf_counter() - start, cells=len(fresh)
            )
            for key, payload in results:
                report = SimReport.from_dict(payload)
                self.metrics.counter("bench.sim_runs").inc()
                self.metrics.histogram(
                    "bench.sim_cycles"
                ).observe(report.cycles)
                self._sim_cache[key] = report
                if self.telemetry_dir:
                    self._write_cell(key, report)
        for key in cells:
            if tuple(key) in self._sim_cache:
                self.metrics.counter("bench.sim_cache_hits").inc()
        return {tuple(c): self._sim_cache[tuple(c)] for c in cells}

    def _account_sim_wall(self, seconds: float, *, cells: int) -> None:
        """Track simulator wall-clock for the perf-trajectory gauges."""
        self._sim_wall_s += seconds
        self._sim_cells += cells
        self.metrics.gauge("sim.wall_s").set(self._sim_wall_s)
        if self._sim_wall_s > 0:
            self.metrics.gauge("sim.cells_per_s").set(
                self._sim_cells / self._sim_wall_s
            )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    @staticmethod
    def _cell_id(key: Tuple) -> str:
        app, dataset, num_pes, cmap_bytes = key
        return f"{app}_{dataset}_pes{num_pes}_cmap{cmap_bytes}"

    def _write_cell(self, key: Tuple, report: SimReport) -> str:
        app, dataset, num_pes, cmap_bytes = key
        os.makedirs(self.telemetry_dir, exist_ok=True)
        path = os.path.join(
            self.telemetry_dir, f"sim_{self._cell_id(key)}.json"
        )
        write_report(path, make_report(
            "sim",
            report.as_dict(),
            meta={
                "app": app,
                "dataset": dataset,
                "num_pes": num_pes,
                "cmap_bytes": cmap_bytes,
            },
        ))
        log.debug("cell telemetry written to %s", path)
        return path

    def telemetry(self) -> Dict[str, object]:
        """Machine-readable roll-up of every cached cell so far."""
        sim_cells = {
            self._cell_id(key): {
                "cycles": report.cycles,
                "seconds": report.seconds,
                "counts": list(report.counts),
                "noc_requests": report.noc_requests,
                "dram_accesses": report.dram_accesses,
                "memory_bound_fraction": report.memory_bound_fraction,
                "load_imbalance": report.load_imbalance,
            }
            for key, report in self._sim_cache.items()
        }
        cpu_cells = {
            f"{app}_{dataset}_t{threads}": {
                "seconds": seconds,
                "counts": list(result.counts),
            }
            for (app, dataset, threads), (seconds, result)
            in self._cpu_cache.items()
        }
        engine_cells = {
            f"{app}_{dataset}_{mode}_w{workers}": {
                "seconds": seconds,
                "counts": list(result.counts),
            }
            for (app, dataset, mode, workers), (seconds, result)
            in self._engine_cache.items()
        }
        stream_cells = {
            f"{app}_{dataset}_stream_w{workers}": dict(entry)
            for (app, dataset, workers), entry
            in self._stream_cache.items()
        }
        stream_cells.update(
            (f"{app}_{dataset}_served_w{workers}", dict(entry))
            for (app, dataset, workers), entry
            in self._served_stream_cache.items()
        )
        return {
            "quick_mode": quick_mode(),
            "sim": sim_cells,
            "cpu": cpu_cells,
            "engine": engine_cells,
            "stream": stream_cells,
            "metrics": self.metrics.snapshot(),
        }

    def write_summary(self, path: Optional[str] = None) -> str:
        """Write ``BENCH_summary.json`` (the cross-PR diffable artifact)."""
        if path is None:
            base = self.telemetry_dir or "."
            os.makedirs(base, exist_ok=True)
            path = os.path.join(base, "BENCH_summary.json")
        write_report(path, make_report("bench-summary", self.telemetry()))
        log.info("bench summary written to %s", path)
        return path

    def cpu(
        self, app: str, dataset: str, *, threads: int = 20
    ) -> Tuple[float, MiningResult]:
        """GraphZero-model CPU run for one cell (memoized)."""
        key = (app, dataset, threads)
        if key not in self._cpu_cache:
            log.debug("cpu cell %s/%s threads=%d", app, dataset, threads)
            self.metrics.counter("bench.cpu_runs").inc()
            self._cpu_cache[key] = graphzero_time(
                self.graph(dataset),
                self.plan(app),
                self.cpu_config,
                threads=threads,
            )
        return self._cpu_cache[key]

    def engine_cell(
        self, app: str, dataset: str, *, mode: str = "kernel", workers: int = 1
    ) -> Tuple[float, MiningResult]:
        """Wall-clock software-engine run for one cell (memoized).

        ``mode`` is ``"legacy"`` (frozen pre-kernel engine),
        ``"kernel"`` (current serial engine), ``"parallel"``
        (:class:`~repro.engine.parallel.ParallelMiner` with ``workers``
        processes and :attr:`TASK_SPLIT_DEGREE` straggler splitting —
        parallel cells therefore report real counts but inflated merged
        op counters; parity asserts compare counts only) or ``"pool"``
        (a warmed :class:`~repro.engine.pool.MinerPool`: forked and
        warmed before the timer, measuring steady-state request cost).
        """
        multi_process = mode in ("parallel", "pool")
        key = (app, dataset, mode, workers if multi_process else 1)
        if key not in self._engine_cache:
            from .enginebench import run_engine_cell

            split = (
                None if (not multi_process or app == "3-MC")
                else self.TASK_SPLIT_DEGREE
            )
            log.debug(
                "engine cell %s/%s mode=%s workers=%d",
                app, dataset, mode, workers,
            )
            self.metrics.counter("bench.engine_runs").inc()
            with self.profiler.phase(
                "mine", app=app, dataset=dataset, mode=mode
            ):
                self._engine_cache[key] = run_engine_cell(
                    self.graph(dataset),
                    self.plan(app),
                    mode=mode,
                    workers=workers,
                    split_degree=split,
                )
        else:
            self.metrics.counter("bench.engine_cache_hits").inc()
        return self._engine_cache[key]

    def engine_stream(
        self,
        app: str,
        dataset: str,
        *,
        workers: int = 4,
        requests: Optional[int] = None,
    ) -> Dict[str, object]:
        """Request-stream throughput for one cell (memoized).

        Runs :func:`repro.bench.enginebench.run_stream_cell` — a stream
        of identical mine requests through one resident
        :class:`~repro.engine.pool.MinerPool` vs per-call
        :class:`~repro.engine.parallel.ParallelMiner` spawning — and
        publishes the steady-state ``engine.stream_cells_per_s`` gauge
        (the warm-pool rate: what a mining service sustains once the
        pool is resident).
        """
        key = (app, dataset, workers)
        if key not in self._stream_cache:
            from .enginebench import run_stream_cell

            log.debug(
                "engine stream %s/%s workers=%d", app, dataset, workers
            )
            self.metrics.counter("bench.engine_stream_runs").inc()
            with self.profiler.phase(
                "mine-stream", app=app, dataset=dataset, workers=workers
            ):
                entry = run_stream_cell(
                    self.graph(dataset),
                    self.plan(app),
                    workers=workers,
                    requests=requests,
                )
            self._stream_cache[key] = entry
            self.metrics.gauge("engine.stream_cells_per_s").set(
                entry["warm_cells_per_s"]
            )
        return self._stream_cache[key]

    def engine_served_stream(
        self,
        app: str,
        dataset: str,
        *,
        workers: int = 4,
        requests: Optional[int] = None,
    ) -> Dict[str, object]:
        """Served request-stream throughput for one cell (memoized).

        Runs :func:`repro.bench.enginebench.run_served_stream_cell` —
        the :func:`engine_stream` request stream one layer up, through
        a resident :class:`~repro.serve.MiningService` — and publishes
        the ``serve.stream_cells_per_s`` gauge (the warm-result-cache
        rate: what the serving layer sustains on repeated traffic).
        """
        key = (app, dataset, workers)
        if key not in self._served_stream_cache:
            from .enginebench import run_served_stream_cell

            log.debug(
                "served stream %s/%s workers=%d", app, dataset, workers
            )
            self.metrics.counter("bench.served_stream_runs").inc()
            with self.profiler.phase(
                "serve-stream", app=app, dataset=dataset, workers=workers
            ):
                entry = run_served_stream_cell(
                    self.graph(dataset),
                    app=app,
                    workers=workers,
                    requests=requests,
                )
            self._served_stream_cache[key] = entry
            self.metrics.gauge("serve.stream_cells_per_s").set(
                entry["cached_cells_per_s"]
            )
        return self._served_stream_cache[key]

    def speedup(
        self,
        app: str,
        dataset: str,
        *,
        num_pes: int,
        cmap_bytes: int = 8 * 1024,
        threads: int = 20,
    ) -> float:
        """FlexMiner speedup over the 20-thread CPU baseline."""
        cpu_seconds, cpu_result = self.cpu(app, dataset, threads=threads)
        report = self.sim(
            app, dataset, num_pes=num_pes, cmap_bytes=cmap_bytes
        )
        if report.counts != cpu_result.counts:
            raise AssertionError(
                f"count mismatch on {app}/{dataset}: "
                f"sim={report.counts} cpu={cpu_result.counts}"
            )
        return cpu_seconds / report.seconds


_GLOBAL: Optional[Harness] = None


def get_harness() -> Harness:
    """Process-wide shared harness (benches reuse each other's cells)."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = Harness()
    return _GLOBAL
