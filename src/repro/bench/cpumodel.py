"""Calibrated CPU baseline timing models (paper §VII-A baselines).

The paper's CPU baseline is GraphZero with 20 threads on a 10-core Intel
i9-7900X (3.3 GHz base / 4.3 GHz turbo, 13.75 MB LLC) with four-channel
DDR4.  We model its runtime from the *measured algorithmic work* of the
pattern-aware engine — the same plans, so identical search trees — with
per-operation cycle costs:

* a merge-loop iteration costs ~6 CPU cycles: compare + increments plus
  the branch-misprediction waste the paper measured with VTune (37-49 %
  of pipeline slots);
* a candidate bound/injectivity check costs ~2 cycles;
* list/loop overheads per adjacency load and per task;
* thread scaling follows Fig. 7: linear to the core count, then
  hyper-threading adds ~30 % per extra thread, under a DRAM bandwidth
  roofline.

AutoMine is GraphZero without symmetry breaking: the engine runs the
same plan with the vid bounds stripped, which multiplies the explored
tree by the automorphism count (each match found |Aut| times).

Gramer (Table II) is the pattern-oblivious engine's work mapped onto the
paper's FPGA configuration (8 processing units).

Absolute constants are calibration parameters, not measurements; the
quantities that matter — ratios between systems — come from the counted
work.  See DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..compiler.plan import ExecutionPlan
from ..engine import OpCounters, PatternAwareEngine
from ..graph import CSRGraph

__all__ = [
    "CpuModelConfig",
    "cpu_time_seconds",
    "strip_symmetry",
    "graphzero_time",
    "automine_time",
    "GramerModelConfig",
    "gramer_time",
]


@dataclass(frozen=True)
class CpuModelConfig:
    """i9-7900X-class machine model."""

    freq_ghz: float = 4.0  # all-core turbo
    cores: int = 10
    threads: int = 20
    ht_extra_efficiency: float = 0.30  # Fig. 7: scaling slows past cores
    dram_bandwidth_gbs: float = 80.0
    #: Per-operation cycle costs (calibrated; see module docstring).
    cycles_per_setop_iteration: float = 6.0
    cycles_per_candidate_check: float = 2.0
    cycles_per_adjacency_load: float = 25.0
    cycles_per_task: float = 120.0

    def effective_threads(self, threads: Optional[int] = None) -> float:
        """Thread scaling with hyper-threading past the core count."""
        t = threads if threads is not None else self.threads
        if t <= self.cores:
            return float(t)
        return self.cores + (t - self.cores) * self.ht_extra_efficiency


def cpu_time_seconds(
    counters: OpCounters,
    config: Optional[CpuModelConfig] = None,
    *,
    threads: Optional[int] = None,
) -> float:
    """Runtime of the counted work on the modelled CPU.

    Roofline form: compute time on the effective threads, bounded below
    by streaming the touched bytes from memory.  (The scaled-down data
    graphs mostly fit in the LLC, so the bandwidth term rarely binds —
    unlike the paper's full-size runs; EXPERIMENTS.md discusses this.)
    """
    cfg = config or CpuModelConfig()
    cycles = (
        counters.setop_iterations * cfg.cycles_per_setop_iteration
        + counters.candidates_checked * cfg.cycles_per_candidate_check
        + counters.adjacency_loads * cfg.cycles_per_adjacency_load
        + counters.tasks * cfg.cycles_per_task
    )
    compute_s = cycles / (cfg.freq_ghz * 1e9) / cfg.effective_threads(threads)
    memory_s = counters.adjacency_bytes / (cfg.dram_bandwidth_gbs * 1e9)
    return max(compute_s, memory_s)


def strip_symmetry(plan: ExecutionPlan) -> ExecutionPlan:
    """AutoMine model: the same plan without symmetry breaking.

    Orientation is also removed (it is itself a symmetry-breaking
    technique), so every automorphic image of a match is explored.
    """
    bare_steps = tuple(
        replace(s, upper_bounds=()) for s in plan.steps
    )
    return replace(
        plan,
        steps=bare_steps,
        oriented=False,
        symmetry_conditions=(),
    )


def graphzero_time(
    graph: CSRGraph,
    plan,
    config: Optional[CpuModelConfig] = None,
    *,
    threads: Optional[int] = None,
) -> tuple:
    """(seconds, MiningResult) for the GraphZero 20-thread baseline."""
    result = PatternAwareEngine(graph, plan).run()
    return (
        cpu_time_seconds(result.counters, config, threads=threads),
        result,
    )


def automine_time(
    graph: CSRGraph,
    plan: ExecutionPlan,
    config: Optional[CpuModelConfig] = None,
    *,
    threads: Optional[int] = None,
) -> tuple:
    """(seconds, MiningResult) for the AutoMine (no-symmetry) baseline.

    The reported match count is normalized by |Aut(P)| so all systems
    agree on the answer; the *time* reflects the larger search tree.
    """
    bare = strip_symmetry(plan)
    result = PatternAwareEngine(graph, bare).run()
    automorphisms = len(plan.pattern.automorphisms())
    normalized = tuple(c // automorphisms for c in result.counts)
    result.counts = normalized  # type: ignore[misc]
    return (
        cpu_time_seconds(result.counters, config, threads=threads),
        result,
    )


@dataclass(frozen=True)
class GramerModelConfig:
    """Gramer's FPGA configuration (paper Table II: 4-thread 8-PU FPGA)."""

    processing_units: int = 8
    freq_ghz: float = 0.25
    cycles_per_subgraph: float = 25.0
    cycles_per_isomorphism_test_unit: float = 2.0  # x k! permutations


def gramer_time(
    counters: OpCounters,
    pattern_size: int,
    config: Optional[GramerModelConfig] = None,
) -> float:
    """Runtime of pattern-oblivious work on the Gramer-class FPGA."""
    import math

    cfg = config or GramerModelConfig()
    iso_cycles = cfg.cycles_per_isomorphism_test_unit * math.factorial(
        pattern_size
    )
    cycles = (
        counters.subgraphs_enumerated * cfg.cycles_per_subgraph
        + counters.isomorphism_tests * iso_cycles
    )
    return cycles / (cfg.freq_ghz * 1e9) / cfg.processing_units
