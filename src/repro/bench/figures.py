"""Figure regeneration: the series behind Figs. 7, 13, 14, 15, 16 and
the §VII-E speedup attribution.

Every function returns plain data (dicts of series) plus a formatted
text rendering, so benches can both assert on shapes and print
paper-style output.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..obs import get_logger
from .cpumodel import cpu_time_seconds
from .harness import (
    FIG13_CELLS,
    FIG14_CELLS,
    FIG15_CELLS,
    FIG16_CELLS,
    Harness,
    restrict,
)

log = get_logger("bench.figures")

__all__ = [
    "fig7_cpu_scaling",
    "fig13_nocmap_speedups",
    "fig14_cmap_sizes",
    "fig15_pe_scaling",
    "fig16_traffic",
    "speedup_attribution",
    "geometric_mean",
    "render_series",
]

UNLIMITED_CMAP = 1 << 22  # 4 MB: effectively unbounded for these graphs
CMAP_SIZES = (0, 1024, 4096, 8192, 16384, UNLIMITED_CMAP)
PE_SWEEP_FIG13 = (10, 20, 40)
PE_SWEEP_FIG15 = (1, 2, 4, 8, 16, 32, 64)


def geometric_mean(values: List[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


# ----------------------------------------------------------------------
# Fig. 7 — CPU k-CL thread scaling
# ----------------------------------------------------------------------
def fig7_cpu_scaling(
    harness: Harness,
    *,
    app: str = "4-CL",
    dataset: str = "Or",
    threads: Tuple[int, ...] = (1, 2, 4, 8, 10, 12, 16, 20, 24),
) -> Dict[int, Dict[str, float]]:
    """Performance and bandwidth vs thread count (paper Fig. 7).

    Performance is normalized to one thread; bandwidth is the touched
    bytes divided by the modelled runtime.
    """
    _, result = harness.cpu(app, dataset, threads=20)
    counters = result.counters
    base = cpu_time_seconds(counters, harness.cpu_config, threads=1)
    series: Dict[int, Dict[str, float]] = {}
    for t in threads:
        seconds = cpu_time_seconds(counters, harness.cpu_config, threads=t)
        series[t] = {
            "speedup": base / seconds,
            "bandwidth_gbs": counters.adjacency_bytes / seconds / 1e9,
        }
    return series


# ----------------------------------------------------------------------
# Fig. 13 — FlexMiner (no c-map) vs GraphZero-20T
# ----------------------------------------------------------------------
def fig13_nocmap_speedups(
    harness: Harness,
    *,
    pe_sweep: Tuple[int, ...] = PE_SWEEP_FIG13,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """speedup[app][dataset][num_pes] over the 20-thread CPU baseline."""
    out: Dict[str, Dict[str, Dict[int, float]]] = {}
    for app, datasets in restrict(FIG13_CELLS).items():
        out[app] = {}
        for ds in datasets:
            log.debug("fig13 cell %s/%s", app, ds)
            out[app][ds] = {
                pes: harness.speedup(app, ds, num_pes=pes, cmap_bytes=0)
                for pes in pe_sweep
            }
    return out


# ----------------------------------------------------------------------
# Fig. 14 — c-map size sweep at 20 PEs, normalized to no-cmap
# ----------------------------------------------------------------------
def fig14_cmap_sizes(
    harness: Harness,
    *,
    sizes: Tuple[int, ...] = CMAP_SIZES,
    num_pes: int = 20,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """normalized_perf[app][dataset][cmap_bytes] (no-cmap == 1.0)."""
    out: Dict[str, Dict[str, Dict[int, float]]] = {}
    for app, datasets in restrict(FIG14_CELLS).items():
        out[app] = {}
        for ds in datasets:
            log.debug("fig14 cell %s/%s", app, ds)
            base = harness.sim(app, ds, num_pes=num_pes, cmap_bytes=0)
            out[app][ds] = {}
            for size in sizes:
                report = harness.sim(
                    app, ds, num_pes=num_pes, cmap_bytes=size
                )
                out[app][ds][size] = base.cycles / report.cycles
    return out


# ----------------------------------------------------------------------
# Fig. 15 — PE scaling with the 8 kB c-map, normalized to one PE
# ----------------------------------------------------------------------
def fig15_pe_scaling(
    harness: Harness,
    *,
    pe_sweep: Tuple[int, ...] = PE_SWEEP_FIG15,
    cmap_bytes: int = 8 * 1024,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """scaling[app][dataset][num_pes], normalized to the 1-PE run."""
    out: Dict[str, Dict[str, Dict[int, float]]] = {}
    for app, datasets in restrict(FIG15_CELLS).items():
        out[app] = {}
        for ds in datasets:
            log.debug("fig15 cell %s/%s", app, ds)
            base = harness.sim(
                app, ds, num_pes=pe_sweep[0], cmap_bytes=cmap_bytes
            )
            out[app][ds] = {
                pes: base.cycles
                / harness.sim(
                    app, ds, num_pes=pes, cmap_bytes=cmap_bytes
                ).cycles
                for pes in pe_sweep
            }
    return out


# ----------------------------------------------------------------------
# Fig. 16 — NoC traffic and DRAM accesses vs c-map size
# ----------------------------------------------------------------------
def fig16_traffic(
    harness: Harness,
    *,
    sizes: Tuple[int, ...] = (0, 4096, 8192),
    num_pes: int = 20,
) -> Dict[str, Dict[str, Dict[int, Dict[str, int]]]]:
    """traffic[app][dataset][cmap_bytes] = {noc, dram} request counts."""
    out: Dict[str, Dict[str, Dict[int, Dict[str, int]]]] = {}
    for app, datasets in restrict(FIG16_CELLS).items():
        out[app] = {}
        for ds in datasets:
            log.debug("fig16 cell %s/%s", app, ds)
            out[app][ds] = {}
            for size in sizes:
                report = harness.sim(
                    app, ds, num_pes=num_pes, cmap_bytes=size
                )
                out[app][ds][size] = {
                    "noc": report.noc_requests,
                    "dram": report.dram_accesses,
                }
    return out


# ----------------------------------------------------------------------
# §VII-E — speedup attribution
# ----------------------------------------------------------------------
def speedup_attribution(
    harness: Harness,
    *,
    app: str = "4-CL",
    dataset: str = "Mi",
    num_pes: int = 40,
) -> Dict[str, float]:
    """Decompose the no-cmap speedup into specialization x multithreading,
    and measure the extra c-map factor (paper: 3.04 x 1.76, then 1.36x).

    * specialization — one PE vs one CPU thread on identical work;
    * multithreading — what scaling to ``num_pes`` PEs adds over that,
      relative to the baseline's 20 threads;
    * cmap_gain — 8 kB c-map vs no-cmap at ``num_pes`` PEs.
    """
    cpu_1t, _ = harness.cpu(app, dataset, threads=1)
    one_pe = harness.sim(app, dataset, num_pes=1, cmap_bytes=0)
    specialization = cpu_1t / one_pe.seconds

    total = harness.speedup(app, dataset, num_pes=num_pes, cmap_bytes=0)
    multithreading = total / specialization

    with_cmap = harness.sim(
        app, dataset, num_pes=num_pes, cmap_bytes=8 * 1024
    )
    no_cmap = harness.sim(app, dataset, num_pes=num_pes, cmap_bytes=0)
    return {
        "specialization": specialization,
        "multithreading": multithreading,
        "total_no_cmap": total,
        "cmap_gain": no_cmap.cycles / with_cmap.cycles,
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_series(
    title: str,
    series: Dict[str, Dict[str, Dict[int, float]]],
    *,
    key_format=lambda k: str(k),
    value_format=lambda v: f"{v:6.2f}",
) -> str:
    """Uniform text rendering for the app -> dataset -> sweep tables."""
    lines = [title]
    for app, per_ds in series.items():
        for ds, sweep in per_ds.items():
            cells = "  ".join(
                f"{key_format(k)}={value_format(v)}"
                for k, v in sweep.items()
            )
            lines.append(f"  {app:<11s} {ds:<3s} {cells}")
    return "\n".join(lines)
