"""Table regeneration: Table I (datasets) and Table II (baselines)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..compiler import compile_pattern
from ..engine import ObliviousEngine, PatternAwareEngine
from ..graph import CSRGraph, load_dataset, random_vertex_sample, suite_stats
from ..patterns import enumerate_motifs, k_clique, triangle
from .cpumodel import (
    CpuModelConfig,
    GramerModelConfig,
    automine_time,
    cpu_time_seconds,
    gramer_time,
)

__all__ = [
    "table1_rows",
    "render_table1",
    "TABLE2_CELLS",
    "table2_rows",
    "render_table2",
]


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def table1_rows() -> List[tuple]:
    """(name, |V|, |E|, max degree, avg degree) per dataset stand-in."""
    return [s.as_row() for s in suite_stats()]


def render_table1() -> str:
    header = f"{'graph':<6s}{'|V|':>8s}{'|E|':>9s}{'maxdeg':>8s}{'avgdeg':>8s}"
    lines = [header]
    for name, v, e, dmax, davg in table1_rows():
        lines.append(f"{name:<6s}{v:>8d}{e:>9d}{dmax:>8d}{davg:>8.1f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table II — Gramer (FPGA) vs AutoMine (CPU) vs GraphZero (CPU)
# ----------------------------------------------------------------------
#: (app, dataset) rows.  The oblivious engine enumerates every connected
#: k-subgraph, so the comparison runs on induced subsamples of the
#: stand-ins (the orders-of-magnitude ordering it demonstrates is
#: scale-free).  SL is excluded: Gramer does not support it (paper).
TABLE2_CELLS: List[Tuple[str, str]] = [
    ("TC", "As"),
    ("TC", "Mi"),
    ("TC", "Pa"),
    ("4-CL", "As"),
    ("4-CL", "Mi"),
    ("5-CL", "As"),
    ("3-MC", "As"),
    ("3-MC", "Mi"),
]

_SAMPLE_SIZES = {"As": 400, "Mi": 320, "Pa": 800}


def _table2_graph(dataset: str) -> CSRGraph:
    full = load_dataset(dataset)
    size = _SAMPLE_SIZES.get(dataset, 400)
    if full.num_vertices <= size:
        return full
    return random_vertex_sample(
        full, size, seed=7, name=f"{dataset}~{size}"
    )


def _app_patterns(app: str):
    if app == "TC":
        return [triangle()], False, 3
    if app == "4-CL":
        return [k_clique(4)], False, 4
    if app == "5-CL":
        return [k_clique(5)], False, 5
    if app == "3-MC":
        return enumerate_motifs(3), True, 3
    raise ValueError(f"Table II does not include {app!r}")


def table2_rows(
    cells: Optional[List[Tuple[str, str]]] = None,
    cpu_config: Optional[CpuModelConfig] = None,
    gramer_config: Optional[GramerModelConfig] = None,
) -> List[Dict[str, object]]:
    """One dict per (app, dataset): modelled seconds for each system.

    Every system's match counts are cross-checked; a mismatch raises.
    """
    cpu_config = cpu_config or CpuModelConfig()
    rows: List[Dict[str, object]] = []
    for app, dataset in cells or TABLE2_CELLS:
        graph = _table2_graph(dataset)
        patterns, induced, k = _app_patterns(app)

        oblivious = ObliviousEngine(graph, patterns, induced=induced).run()
        t_gramer = gramer_time(oblivious.counters, k, gramer_config)

        t_graphzero = 0.0
        t_automine = 0.0
        gz_counts: List[int] = []
        am_counts: List[int] = []
        for pattern in patterns:
            plan = compile_pattern(pattern, induced=induced)
            gz = PatternAwareEngine(graph, plan).run()
            t_graphzero += cpu_time_seconds(gz.counters, cpu_config)
            gz_counts.extend(gz.counts)
            seconds, am = automine_time(graph, plan, cpu_config)
            t_automine += seconds
            am_counts.extend(am.counts)

        if tuple(gz_counts) != oblivious.counts or tuple(am_counts) != (
            oblivious.counts
        ):
            raise AssertionError(
                f"count mismatch on {app}/{dataset}: gz={gz_counts} "
                f"am={am_counts} oblivious={oblivious.counts}"
            )
        rows.append(
            {
                "app": app,
                "dataset": dataset,
                "gramer_s": t_gramer,
                "automine_s": t_automine,
                "graphzero_s": t_graphzero,
                "counts": oblivious.counts,
            }
        )
    return rows


def render_table2(rows: List[Dict[str, object]]) -> str:
    header = (
        f"{'app':<7s}{'graph':<7s}{'Gramer(s)':>12s}{'AutoMine(s)':>13s}"
        f"{'GraphZero(s)':>14s}{'GZ/Gramer':>11s}"
    )
    lines = [header]
    for row in rows:
        ratio = row["gramer_s"] / row["graphzero_s"]
        lines.append(
            f"{row['app']:<7s}{row['dataset']:<7s}"
            f"{row['gramer_s']:>12.4f}{row['automine_s']:>13.4f}"
            f"{row['graphzero_s']:>14.4f}{ratio:>10.1f}x"
        )
    return "\n".join(lines)
