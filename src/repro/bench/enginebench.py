"""CPU-engine wall-clock bench: kernel layer and parallel backend.

The simulator benches measure modeled cycles; this module measures real
wall-clock of the *software* engine, because the set-op kernel layer
(:mod:`repro.engine.kernels`) and the multi-process backend
(:mod:`repro.engine.parallel`) exist to make the CPU reference faster
without changing what it computes.

Four cell modes:

* ``legacy`` — :class:`LegacyEngine`, a frozen replica of the pre-kernel
  engine (generic ``np.intersect1d``/``np.setdiff1d``, per-element
  injectivity loop, no count-only leaves).  This is the speedup
  denominator, kept verbatim so the measured ratio tracks the shipped
  optimizations rather than drifting with them.
* ``kernel`` — the current :class:`PatternAwareEngine` (size-adaptive
  kernels, injectivity skip, count-only leaf path, batch frontier
  leaves).
* ``parallel`` — :class:`ParallelMiner` with N workers and the
  harness's straggler-splitting degree.  Each sample pays the full
  process spin-up (fork + shared-memory export), which is exactly what
  it costs a one-shot caller.
* ``pool`` — the persistent :class:`~repro.engine.pool.MinerPool`:
  workers are forked and warmed *before* the timed region, so the cell
  measures the steady-state request cost a mining *service* sees.

:func:`run_stream_cell` additionally drives a whole request stream
through one resident pool vs. per-call spawning, separating
steady-state throughput from cold-start — the old methodology timed
only one-shot mines, burying the pool's advantage under spawn cost.

Every cell must agree on counts, and the kernel cell must agree with
legacy on *all* op counters (the bit-identical accounting contract).
``write_engine_bench`` rolls the cells into ``BENCH_engine.json``; the
speedup targets (kernel >= 1.3x, pooled 4 workers >= 2x on multi-core
hosts, warm stream >= 3x spawn) are recorded in the payload, not
asserted — machines differ, numbers are logged either way.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

import numpy as np

from ..engine import MinerPool, OpCounters, ParallelMiner, PatternAwareEngine
from ..engine.setops import merge_iterations
from ..obs import get_logger, make_report, write_report
from .harness import Harness, get_harness, quick_mode

log = get_logger("bench.engine")

__all__ = [
    "ENGINE_BENCH_CELLS",
    "LegacyEngine",
    "STREAM_CELL",
    "engine_bench",
    "run_engine_cell",
    "run_frontier_cell",
    "run_served_stream_cell",
    "run_stream_cell",
    "write_engine_bench",
]

#: (app, dataset) cells the engine bench times.  4-CL/As is the
#: acceptance cell; TC/As adds a memo-light workload.
ENGINE_BENCH_CELLS = (("4-CL", "As"), ("TC", "As"))

#: Worker counts for the parallel sweep.
WORKER_SWEEP = (1, 2, 4)

#: The (app, dataset, workers) cell the request-stream bench drives.
STREAM_CELL = ("TC", "As", 4)

#: Requests per stream measurement (cold-start amortizes over these).
STREAM_REQUESTS = 100
STREAM_REQUESTS_QUICK = 5


# ----------------------------------------------------------------------
# Frozen pre-kernel engine (the speedup denominator)
# ----------------------------------------------------------------------

def _legacy_intersect(a, b, counters: OpCounters):
    counters.set_intersections += 1
    counters.setop_iterations += merge_iterations(len(a), len(b))
    return np.intersect1d(a, b, assume_unique=True)


def _legacy_difference(a, b, counters: OpCounters):
    counters.set_differences += 1
    counters.setop_iterations += merge_iterations(len(a), len(b))
    return np.setdiff1d(a, b, assume_unique=True)


def _legacy_remove_values(values, forbidden):
    if not len(values):
        return values
    mask = None
    for v in forbidden:
        pos = int(np.searchsorted(values, v))
        if pos < len(values) and values[pos] == v:
            if mask is None:
                mask = np.ones(len(values), dtype=bool)
            mask[pos] = False
    return values if mask is None else values[mask]


class LegacyEngine(PatternAwareEngine):
    """The engine exactly as it ran before the kernel layer landed.

    Candidate generation uses the generic numpy primitives and the
    per-element injectivity loop; every leaf list is materialized.  The
    class exists only as a measurement baseline — counts and counters
    must match the production engine bit for bit (the bench asserts it).
    """

    supports_leaf_counting = False

    def _raw_candidates(self, step, emb):
        if self.use_frontier_memo and step.base_step is not None:
            self.counters.frontier_hits += 1
            cands = self._raw_stack[step.base_step]
            for d in step.extra_connected:
                cands = _legacy_intersect(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
            for d in step.extra_disconnected:
                cands = _legacy_difference(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
        else:
            if step.base_step is not None:
                self.counters.frontier_misses += 1
            cands = self._load_adjacency(emb[step.extender])
            for d in step.connected:
                cands = _legacy_intersect(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
            for d in step.disconnected:
                cands = _legacy_difference(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
        self._raw_stack[step.depth] = cands
        return cands

    def _filtered_candidates(self, step, emb):
        cands = self._raw_candidates(step, emb)
        self.counters.candidates_checked += len(cands)
        if step.upper_bounds:
            bound = min(emb[b] for b in step.upper_bounds)
            cands = cands[: int(np.searchsorted(cands, bound))]
        if step.label is not None:
            cands = cands[self._labels[cands] == step.label]
        return _legacy_remove_values(cands, emb)


# ----------------------------------------------------------------------
# Cell runner
# ----------------------------------------------------------------------

def run_engine_cell(
    graph,
    plan,
    *,
    mode: str = "kernel",
    workers: int = 1,
    split_degree: Optional[int] = None,
    repeats: int = 2,
):
    """Time one engine configuration; returns ``(seconds, MiningResult)``.

    ``seconds`` is the best of ``repeats`` runs (wall-clock benches on
    shared machines want a minimum, not a mean).  ``pool`` cells fork
    and warm the worker pool *before* the timed region, so their
    seconds are steady-state request cost; every other mode pays its
    full setup inside the measurement.
    """
    if mode == "pool":
        return _run_pool_cell(
            graph, plan, workers=workers, split_degree=split_degree,
            repeats=repeats,
        )

    def once():
        if mode == "legacy":
            runner = LegacyEngine(graph, plan)
            work = runner.run
        elif mode == "kernel":
            runner = PatternAwareEngine(graph, plan)
            work = runner.run
        elif mode == "parallel":
            runner = ParallelMiner(
                graph, plan, workers=workers, split_degree=split_degree
            )
            work = runner.mine
        else:
            raise ValueError(f"unknown engine bench mode {mode!r}")
        start = time.perf_counter()
        result = work()
        return time.perf_counter() - start, result

    best, result = once()
    for _ in range(max(0, repeats - 1)):
        seconds, again = once()
        if again.counts != result.counts:  # pragma: no cover - invariant
            raise AssertionError("engine bench repeat changed the counts")
        best = min(best, seconds)
    return best, result


def _run_pool_cell(
    graph,
    plan,
    *,
    workers: int,
    split_degree: Optional[int],
    repeats: int,
):
    """Warm-pool cell: fork + first (warming) request outside the timer."""
    with MinerPool(graph, workers=workers) as pool:
        result = pool.mine(plan, split_degree=split_degree)
        best = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            again = pool.mine(plan, split_degree=split_degree)
            seconds = time.perf_counter() - start
            if again.counts != result.counts:  # pragma: no cover
                raise AssertionError(
                    "engine bench repeat changed the counts"
                )
            best = seconds if best is None else min(best, seconds)
    return best, result


def run_frontier_cell(
    graph,
    plan,
    *,
    batch: bool,
    workers: int = 1,
    repeats: int = 2,
):
    """Time one frontier-sweep configuration with peak RSS.

    ``batch=False`` is the recursive reference, ``batch=True`` the
    level-synchronous frontier mode; ``workers > 1`` routes through
    :class:`ParallelMiner` with no straggler splitting, so counts *and*
    op counters stay comparable across every cell of the sweep.
    Returns ``(seconds, peak_rss_kb, MiningResult)`` — seconds is the
    best of ``repeats``, peak RSS the max (RSS never shrinks within a
    process; the max is the honest high-water mark).
    """
    from ..obs import PhaseProfiler

    best = None
    peak_rss = 0
    result = None
    for _ in range(max(1, repeats)):
        prof = PhaseProfiler()
        with prof.phase("mine"):
            if workers > 1:
                run = ParallelMiner(
                    graph, plan, workers=workers, batch_frontier=batch
                ).mine()
            else:
                run = PatternAwareEngine(
                    graph, plan, batch_frontier=batch
                ).run()
        rec = prof.phases()[-1]
        if result is not None and run.counts != result.counts:
            raise AssertionError(  # pragma: no cover - invariant
                "frontier bench repeat changed the counts"
            )
        result = run
        best = rec.wall_s if best is None else min(best, rec.wall_s)
        peak_rss = max(peak_rss, rec.peak_rss_kb)
    return best, peak_rss, result


def run_stream_cell(
    graph,
    plan,
    *,
    workers: int = 4,
    requests: Optional[int] = None,
) -> Dict[str, object]:
    """Sustained request-stream throughput: warm pool vs per-call spawn.

    Drives ``requests`` identical mine requests through one resident
    :class:`MinerPool` (fork + calibration + one warming request happen
    before the timer) and then through ``requests`` fresh
    :class:`ParallelMiner` instances (each paying fork + shared-memory
    export, as a one-shot caller would).  The measured pool dispatch
    overhead lands in the payload, giving the report envelope the
    calibrated constant the cost-model split rule uses.
    """
    if requests is None:
        requests = STREAM_REQUESTS_QUICK if quick_mode() else STREAM_REQUESTS
    with MinerPool(graph, workers=workers) as pool:
        overhead_s = pool.dispatch_overhead_s
        expected = pool.mine(plan)  # warming request (work-graph export)
        start = time.perf_counter()
        for _ in range(requests):
            result = pool.mine(plan)
            if result.counts != expected.counts:  # pragma: no cover
                raise AssertionError("stream request changed the counts")
        warm_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(requests):
        result = ParallelMiner(graph, plan, workers=workers).mine()
        if result.counts != expected.counts:  # pragma: no cover
            raise AssertionError("spawn request changed the counts")
    spawn_seconds = time.perf_counter() - start
    return {
        "workers": workers,
        "requests": requests,
        "counts": list(expected.counts),
        "dispatch_overhead_s": overhead_s,
        "warm_pool_seconds": warm_seconds,
        "spawn_seconds": spawn_seconds,
        "warm_cells_per_s": (
            requests / warm_seconds if warm_seconds else 0.0
        ),
        "spawn_cells_per_s": (
            requests / spawn_seconds if spawn_seconds else 0.0
        ),
        "warm_vs_spawn_speedup": (
            spawn_seconds / warm_seconds if warm_seconds else 0.0
        ),
    }


def run_served_stream_cell(
    graph,
    *,
    app: str = "TC",
    k: int = 3,
    workers: int = 4,
    requests: Optional[int] = None,
) -> Dict[str, object]:
    """Request-stream throughput through the resident serving layer.

    Extends :func:`run_stream_cell` one layer up: the same identical
    request stream goes through a :class:`~repro.serve.MiningService`
    twice — once answered from the warm result cache (what a service
    sustains on repeated traffic) and once with the cache bypassed
    (every request executes on the warm pool, so the serving layer's
    own dispatch cost is visible).  The warming request pays plan
    compilation and the first execution before either timer starts.
    """
    from ..serve import MineRequest, MiningService

    if requests is None:
        requests = STREAM_REQUESTS_QUICK if quick_mode() else STREAM_REQUESTS
    with MiningService(workers=workers) as service:
        service.register_graph("bench", graph)
        request = MineRequest(graph="bench", app=app, k=k)
        expected = service.request(request)  # warm: compile + memoize
        start = time.perf_counter()
        for _ in range(requests):
            result = service.request(request)
            if result.counts != expected.counts:  # pragma: no cover
                raise AssertionError("served request changed the counts")
        cached_seconds = time.perf_counter() - start
        uncached = MineRequest(
            graph="bench", app=app, k=k, use_cache=False
        )
        start = time.perf_counter()
        for _ in range(requests):
            result = service.request(uncached)
            if result.counts != expected.counts:  # pragma: no cover
                raise AssertionError("served request changed the counts")
        executed_seconds = time.perf_counter() - start
        cache_stats = service.cache_stats()
    return {
        "workers": workers,
        "requests": requests,
        "counts": list(expected.counts),
        "plan_compiles": cache_stats["plan"]["compiles"],
        "result_cache_hits": cache_stats["result"]["hits"],
        "cached_seconds": cached_seconds,
        "executed_seconds": executed_seconds,
        "cached_cells_per_s": (
            requests / cached_seconds if cached_seconds else 0.0
        ),
        "executed_cells_per_s": (
            requests / executed_seconds if executed_seconds else 0.0
        ),
        "cached_vs_executed_speedup": (
            executed_seconds / cached_seconds if cached_seconds else 0.0
        ),
    }


# ----------------------------------------------------------------------
# Bench entry points
# ----------------------------------------------------------------------

def engine_bench(harness: Optional[Harness] = None) -> Dict[str, object]:
    """Measure every engine cell and return the JSON-able payload.

    Asserts count parity across all modes and full op-counter parity
    between the legacy and kernel serial engines.
    """
    from ..verify.differential import Mismatch

    h = harness or get_harness()
    cells: Dict[str, object] = {}
    for app, dataset in ENGINE_BENCH_CELLS:
        legacy_s, legacy = h.engine_cell(app, dataset, mode="legacy")
        kernel_s, kernel = h.engine_cell(app, dataset, mode="kernel")
        if kernel.counts != legacy.counts:
            raise AssertionError(
                str(
                    Mismatch(
                        f"{app}/{dataset}",
                        "kernel",
                        "count",
                        expected=list(legacy.counts),
                        actual=list(kernel.counts),
                    )
                )
            )
        if kernel.counters.as_dict() != legacy.counters.as_dict():
            ref = legacy.counters.as_dict()
            got = kernel.counters.as_dict()
            keys = sorted(k for k in ref if ref[k] != got[k])
            raise AssertionError(
                str(
                    Mismatch(
                        f"{app}/{dataset}",
                        "kernel",
                        "counter-drift",
                        expected={k: ref[k] for k in keys},
                        actual={k: got[k] for k in keys},
                        detail="drift vs legacy",
                    )
                )
            )
        entry: Dict[str, object] = {
            "counts": list(legacy.counts),
            "legacy_seconds": legacy_s,
            "kernel_seconds": kernel_s,
            "kernel_speedup": legacy_s / kernel_s if kernel_s else 0.0,
            "parallel": {},
        }
        entry["pool"] = {}
        for workers in WORKER_SWEEP:
            for mode in ("parallel", "pool"):
                cell_s, cell = h.engine_cell(
                    app, dataset, mode=mode, workers=workers
                )
                if cell.counts != legacy.counts:
                    raise AssertionError(
                        str(
                            Mismatch(
                                f"{app}/{dataset}",
                                f"{mode}-{workers}",
                                "count",
                                expected=list(legacy.counts),
                                actual=list(cell.counts),
                            )
                        )
                    )
                entry[mode][str(workers)] = {
                    "seconds": cell_s,
                    "speedup_vs_legacy": (
                        legacy_s / cell_s if cell_s else 0.0
                    ),
                    "speedup_vs_kernel": (
                        kernel_s / cell_s if cell_s else 0.0
                    ),
                }
        cells[f"{app}_{dataset}"] = entry
        log.info(
            "engine cell %s/%s: legacy %.1f ms, kernel %.1f ms (%.2fx)",
            app, dataset, legacy_s * 1e3, kernel_s * 1e3,
            entry["kernel_speedup"],
        )
    frontier_sweep: Dict[str, object] = {}
    for app, dataset in ENGINE_BENCH_CELLS:
        graph = h.graph(dataset)
        plan = h.plan(app)
        sweep: Dict[str, object] = {}
        for workers in WORKER_SWEEP:
            rec_s, rec_rss, rec = run_frontier_cell(
                graph, plan, batch=False, workers=workers
            )
            bat_s, bat_rss, bat = run_frontier_cell(
                graph, plan, batch=True, workers=workers
            )
            if bat.counts != rec.counts:
                raise AssertionError(
                    str(
                        Mismatch(
                            f"{app}/{dataset}",
                            f"frontier-{workers}",
                            "count",
                            expected=list(rec.counts),
                            actual=list(bat.counts),
                        )
                    )
                )
            if bat.counters.as_dict() != rec.counters.as_dict():
                ref = rec.counters.as_dict()
                got = bat.counters.as_dict()
                keys = sorted(k for k in ref if ref[k] != got[k])
                raise AssertionError(
                    str(
                        Mismatch(
                            f"{app}/{dataset}",
                            f"frontier-{workers}",
                            "counter-drift",
                            expected={k: ref[k] for k in keys},
                            actual={k: got[k] for k in keys},
                            detail="drift vs recursive",
                        )
                    )
                )
            sweep[str(workers)] = {
                "recursive_seconds": rec_s,
                "batch_seconds": bat_s,
                "speedup": rec_s / bat_s if bat_s else 0.0,
                "recursive_peak_rss_kb": rec_rss,
                "batch_peak_rss_kb": bat_rss,
            }
        frontier_sweep[f"{app}_{dataset}"] = sweep
        log.info(
            "frontier sweep %s/%s w=1: recursive %.1f ms, batch %.1f ms "
            "(%.2fx)",
            app, dataset,
            sweep["1"]["recursive_seconds"] * 1e3,
            sweep["1"]["batch_seconds"] * 1e3,
            sweep["1"]["speedup"],
        )
    stream_app, stream_dataset, stream_workers = STREAM_CELL
    stream = h.engine_stream(
        stream_app, stream_dataset, workers=stream_workers
    )
    served = h.engine_served_stream(
        stream_app, stream_dataset, workers=stream_workers
    )
    if served["counts"] != stream["counts"]:  # pragma: no cover
        raise AssertionError(
            str(
                Mismatch(
                    f"{stream_app}/{stream_dataset}",
                    "served-stream",
                    "count",
                    expected=stream["counts"],
                    actual=served["counts"],
                )
            )
        )
    return {
        "quick_mode": quick_mode(),
        "cpu_count": os.cpu_count(),
        "split_degree": Harness.TASK_SPLIT_DEGREE,
        # The calibrated dispatch-overhead constant the cost-model
        # split rule prices chunks against, as measured on this host.
        "dispatch_overhead_s": stream["dispatch_overhead_s"],
        "targets": {
            "kernel_speedup": 1.3,
            # batch-frontier vs recursive at workers=1 (frontier_sweep).
            "frontier_speedup": 1.5,
            "parallel4_speedup": 2.0,
            "pool4_speedup": 2.0,
            "stream_warm_vs_spawn": 3.0,
            # The served warm-cache rate must at least match the warm
            # pool it sits on: a cache hit skips the mine entirely.
            "served_cached_vs_warm_pool": 1.0,
            "note": "targets assume a multi-core host; single-core CI "
                    "boxes log the numbers without meeting the parallel "
                    "ones",
        },
        "cells": cells,
        "frontier_sweep": frontier_sweep,
        "stream": {
            f"{stream_app}_{stream_dataset}_w{stream_workers}": stream,
            f"{stream_app}_{stream_dataset}_served_w{stream_workers}": (
                served
            ),
        },
    }


def write_engine_bench(
    path: Optional[str] = None, harness: Optional[Harness] = None
) -> str:
    """Write ``BENCH_engine.json`` (the cross-PR diffable artifact)."""
    h = harness or get_harness()
    payload = engine_bench(h)
    if path is None:
        base = h.telemetry_dir or "."
        os.makedirs(base, exist_ok=True)
        path = os.path.join(base, "BENCH_engine.json")
    write_report(path, make_report("bench-engine", payload))
    log.info("engine bench written to %s", path)
    return path
