"""CPU-engine wall-clock bench: kernel layer and parallel backend.

The simulator benches measure modeled cycles; this module measures real
wall-clock of the *software* engine, because the set-op kernel layer
(:mod:`repro.engine.kernels`) and the multi-process backend
(:mod:`repro.engine.parallel`) exist to make the CPU reference faster
without changing what it computes.

Three cell modes:

* ``legacy`` — :class:`LegacyEngine`, a frozen replica of the pre-kernel
  engine (generic ``np.intersect1d``/``np.setdiff1d``, per-element
  injectivity loop, no count-only leaves).  This is the speedup
  denominator, kept verbatim so the measured ratio tracks the shipped
  optimizations rather than drifting with them.
* ``kernel`` — the current :class:`PatternAwareEngine` (size-adaptive
  kernels, injectivity skip, count-only leaf path).
* ``parallel`` — :class:`ParallelMiner` with N workers and the
  harness's straggler-splitting degree.

Every cell must agree on counts, and the kernel cell must agree with
legacy on *all* op counters (the bit-identical accounting contract).
``write_engine_bench`` rolls the cells into ``BENCH_engine.json``; the
speedup targets (kernel >= 1.3x, 4 workers >= 2x on multi-core hosts)
are recorded in the payload, not asserted — machines differ, numbers are
logged either way.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

import numpy as np

from ..engine import OpCounters, ParallelMiner, PatternAwareEngine
from ..engine.setops import merge_iterations
from ..obs import get_logger, make_report, write_report
from .harness import Harness, get_harness, quick_mode

log = get_logger("bench.engine")

__all__ = [
    "ENGINE_BENCH_CELLS",
    "LegacyEngine",
    "engine_bench",
    "run_engine_cell",
    "write_engine_bench",
]

#: (app, dataset) cells the engine bench times.  4-CL/As is the
#: acceptance cell; TC/As adds a memo-light workload.
ENGINE_BENCH_CELLS = (("4-CL", "As"), ("TC", "As"))

#: Worker counts for the parallel sweep.
WORKER_SWEEP = (1, 2, 4)


# ----------------------------------------------------------------------
# Frozen pre-kernel engine (the speedup denominator)
# ----------------------------------------------------------------------

def _legacy_intersect(a, b, counters: OpCounters):
    counters.set_intersections += 1
    counters.setop_iterations += merge_iterations(len(a), len(b))
    return np.intersect1d(a, b, assume_unique=True)


def _legacy_difference(a, b, counters: OpCounters):
    counters.set_differences += 1
    counters.setop_iterations += merge_iterations(len(a), len(b))
    return np.setdiff1d(a, b, assume_unique=True)


def _legacy_remove_values(values, forbidden):
    if not len(values):
        return values
    mask = None
    for v in forbidden:
        pos = int(np.searchsorted(values, v))
        if pos < len(values) and values[pos] == v:
            if mask is None:
                mask = np.ones(len(values), dtype=bool)
            mask[pos] = False
    return values if mask is None else values[mask]


class LegacyEngine(PatternAwareEngine):
    """The engine exactly as it ran before the kernel layer landed.

    Candidate generation uses the generic numpy primitives and the
    per-element injectivity loop; every leaf list is materialized.  The
    class exists only as a measurement baseline — counts and counters
    must match the production engine bit for bit (the bench asserts it).
    """

    supports_leaf_counting = False

    def _raw_candidates(self, step, emb):
        if self.use_frontier_memo and step.base_step is not None:
            self.counters.frontier_hits += 1
            cands = self._raw_stack[step.base_step]
            for d in step.extra_connected:
                cands = _legacy_intersect(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
            for d in step.extra_disconnected:
                cands = _legacy_difference(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
        else:
            if step.base_step is not None:
                self.counters.frontier_misses += 1
            cands = self._load_adjacency(emb[step.extender])
            for d in step.connected:
                cands = _legacy_intersect(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
            for d in step.disconnected:
                cands = _legacy_difference(
                    cands, self._load_adjacency(emb[d]), self.counters
                )
        self._raw_stack[step.depth] = cands
        return cands

    def _filtered_candidates(self, step, emb):
        cands = self._raw_candidates(step, emb)
        self.counters.candidates_checked += len(cands)
        if step.upper_bounds:
            bound = min(emb[b] for b in step.upper_bounds)
            cands = cands[: int(np.searchsorted(cands, bound))]
        if step.label is not None:
            cands = cands[self._labels[cands] == step.label]
        return _legacy_remove_values(cands, emb)


# ----------------------------------------------------------------------
# Cell runner
# ----------------------------------------------------------------------

def run_engine_cell(
    graph,
    plan,
    *,
    mode: str = "kernel",
    workers: int = 1,
    split_degree: Optional[int] = None,
    repeats: int = 2,
):
    """Time one engine configuration; returns ``(seconds, MiningResult)``.

    ``seconds`` is the best of ``repeats`` runs (wall-clock benches on
    shared machines want a minimum, not a mean).
    """
    def once():
        if mode == "legacy":
            runner = LegacyEngine(graph, plan)
            work = runner.run
        elif mode == "kernel":
            runner = PatternAwareEngine(graph, plan)
            work = runner.run
        elif mode == "parallel":
            runner = ParallelMiner(
                graph, plan, workers=workers, split_degree=split_degree
            )
            work = runner.mine
        else:
            raise ValueError(f"unknown engine bench mode {mode!r}")
        start = time.perf_counter()
        result = work()
        return time.perf_counter() - start, result

    best, result = once()
    for _ in range(max(0, repeats - 1)):
        seconds, again = once()
        if again.counts != result.counts:  # pragma: no cover - invariant
            raise AssertionError("engine bench repeat changed the counts")
        best = min(best, seconds)
    return best, result


# ----------------------------------------------------------------------
# Bench entry points
# ----------------------------------------------------------------------

def engine_bench(harness: Optional[Harness] = None) -> Dict[str, object]:
    """Measure every engine cell and return the JSON-able payload.

    Asserts count parity across all modes and full op-counter parity
    between the legacy and kernel serial engines.
    """
    from ..verify.differential import Mismatch

    h = harness or get_harness()
    cells: Dict[str, object] = {}
    for app, dataset in ENGINE_BENCH_CELLS:
        legacy_s, legacy = h.engine_cell(app, dataset, mode="legacy")
        kernel_s, kernel = h.engine_cell(app, dataset, mode="kernel")
        if kernel.counts != legacy.counts:
            raise AssertionError(
                str(
                    Mismatch(
                        f"{app}/{dataset}",
                        "kernel",
                        "count",
                        expected=list(legacy.counts),
                        actual=list(kernel.counts),
                    )
                )
            )
        if kernel.counters.as_dict() != legacy.counters.as_dict():
            ref = legacy.counters.as_dict()
            got = kernel.counters.as_dict()
            keys = sorted(k for k in ref if ref[k] != got[k])
            raise AssertionError(
                str(
                    Mismatch(
                        f"{app}/{dataset}",
                        "kernel",
                        "counter-drift",
                        expected={k: ref[k] for k in keys},
                        actual={k: got[k] for k in keys},
                        detail="drift vs legacy",
                    )
                )
            )
        entry: Dict[str, object] = {
            "counts": list(legacy.counts),
            "legacy_seconds": legacy_s,
            "kernel_seconds": kernel_s,
            "kernel_speedup": legacy_s / kernel_s if kernel_s else 0.0,
            "parallel": {},
        }
        for workers in WORKER_SWEEP:
            par_s, par = h.engine_cell(
                app, dataset, mode="parallel", workers=workers
            )
            if par.counts != legacy.counts:
                raise AssertionError(
                    str(
                        Mismatch(
                            f"{app}/{dataset}",
                            f"parallel-{workers}",
                            "count",
                            expected=list(legacy.counts),
                            actual=list(par.counts),
                        )
                    )
                )
            entry["parallel"][str(workers)] = {
                "seconds": par_s,
                "speedup_vs_legacy": legacy_s / par_s if par_s else 0.0,
                "speedup_vs_kernel": kernel_s / par_s if par_s else 0.0,
            }
        cells[f"{app}_{dataset}"] = entry
        log.info(
            "engine cell %s/%s: legacy %.1f ms, kernel %.1f ms (%.2fx)",
            app, dataset, legacy_s * 1e3, kernel_s * 1e3,
            entry["kernel_speedup"],
        )
    return {
        "quick_mode": quick_mode(),
        "cpu_count": os.cpu_count(),
        "split_degree": Harness.TASK_SPLIT_DEGREE,
        "targets": {
            "kernel_speedup": 1.3,
            "parallel4_speedup": 2.0,
            "note": "targets assume a multi-core host; single-core CI "
                    "boxes log the numbers without meeting the parallel "
                    "one",
        },
        "cells": cells,
    }


def write_engine_bench(
    path: Optional[str] = None, harness: Optional[Harness] = None
) -> str:
    """Write ``BENCH_engine.json`` (the cross-PR diffable artifact)."""
    h = harness or get_harness()
    payload = engine_bench(h)
    if path is None:
        base = h.telemetry_dir or "."
        os.makedirs(base, exist_ok=True)
        path = os.path.join(base, "BENCH_engine.json")
    write_report(path, make_report("bench-engine", payload))
    log.info("engine bench written to %s", path)
    return path
