"""Simulator wall-clock bench: timing kernels and the parallel runner.

The accelerator simulator's *modeled* numbers (cycles, counters) are
pinned bit-identical across every execution mode by the differential
harness; this bench measures what the modes exist for — real wall-clock
of producing those numbers:

* ``legacy`` — per-element reference loops
  (``FlexMinerConfig.timing_kernels=False``), the speedup denominator,
  kept alive precisely so this ratio tracks the shipped optimization;
* ``fast`` — the vectorized/batched timing kernels (the default);
* ``parallel`` — :func:`repro.hw.parallel_sim.simulate_parallel` with
  N trace workers on one cell;
* ``sweep`` — the whole quick-mode figure sweep, serial vs the
  cell-level process pool (:meth:`repro.bench.harness.Harness.sim_many`).

Every mode's report must equal the legacy report bit for bit — the
bench asserts it, so a perf number can never come from a divergent
simulation.  ``write_sim_bench`` rolls everything into
``BENCH_sim.json``; the speedup target (>= 3x on the quick sweep with
a multi-core pool) is recorded in the payload, not asserted — CI boxes
differ, numbers are logged either way.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, List, Optional, Tuple

from ..graph import load_dataset
from ..hw import simulate
from ..hw.parallel_sim import simulate_parallel
from ..obs import get_logger, make_report, write_report
from .harness import (
    FIG13_CELLS,
    Harness,
    _plan,
    _sim_cell_config,
    get_harness,
    quick_mode,
)

log = get_logger("bench.sim")

__all__ = [
    "SIM_BENCH_CELL",
    "sim_bench",
    "sim_sweep_cells",
    "write_sim_bench",
]

#: The acceptance cell for per-mode timing (cheap but non-trivial).
SIM_BENCH_CELL = ("4-CL", "As")

#: Trace-worker counts for the task-sharded runner.
WORKER_SWEEP = (1, 2, 4)


def sim_sweep_cells() -> List[Tuple[str, str, int, int]]:
    """The quick-mode Fig. 13 sweep (cheapest dataset per app)."""
    return [
        (app, datasets[0], 64, 8 * 1024)
        for app, datasets in FIG13_CELLS.items()
    ]


def _time_cell(app: str, dataset: str, *, kernels: bool, repeats: int = 2):
    """Best-of-N serial wall-clock for one cell; returns (s, report)."""
    graph = load_dataset(dataset)
    plan = _plan(app)
    config = dataclasses.replace(
        _sim_cell_config(app, 64, 8 * 1024), timing_kernels=kernels
    )
    best = None
    report = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        again = simulate(graph, plan, config)
        seconds = time.perf_counter() - start
        if report is not None and again.as_dict() != report.as_dict():
            raise AssertionError(  # pragma: no cover - invariant
                "sim bench repeat changed the report"
            )
        report = again
        best = seconds if best is None else min(best, seconds)
    return best, report


def sim_bench(harness: Optional[Harness] = None) -> Dict[str, object]:
    """Measure every simulator mode and return the JSON-able payload.

    Asserts bit-identical reports between the legacy loops, the
    vectorized kernels, and the parallel runner at every worker count.
    """
    h = harness or get_harness()
    app, dataset = SIM_BENCH_CELL
    legacy_s, legacy = _time_cell(app, dataset, kernels=False)
    fast_s, fast = _time_cell(app, dataset, kernels=True)
    if fast.as_dict() != legacy.as_dict():
        ref, got = legacy.as_dict(), fast.as_dict()
        keys = sorted(k for k in ref if ref[k] != got[k])
        raise AssertionError(
            f"timing-kernel report drift on {app}/{dataset}: {keys}"
        )

    cell_entry: Dict[str, object] = {
        "counts": list(legacy.counts),
        "cycles": legacy.cycles,
        "legacy_seconds": legacy_s,
        "fast_seconds": fast_s,
        "fast_speedup": legacy_s / fast_s if fast_s else 0.0,
        "parallel": {},
    }
    graph = load_dataset(dataset)
    plan = _plan(app)
    config = _sim_cell_config(app, 64, 8 * 1024)
    for workers in WORKER_SWEEP:
        start = time.perf_counter()
        par = simulate_parallel(graph, plan, config, workers=workers)
        par_s = time.perf_counter() - start
        if par.as_dict() != legacy.as_dict():
            raise AssertionError(
                f"parallel-sim report drift on {app}/{dataset} "
                f"workers={workers}"
            )
        cell_entry["parallel"][str(workers)] = {
            "seconds": par_s,
            "speedup_vs_legacy": legacy_s / par_s if par_s else 0.0,
            "speedup_vs_fast": fast_s / par_s if par_s else 0.0,
        }

    # Whole-sweep: serial fast-path vs the cell pool.
    cells = sim_sweep_cells()
    start = time.perf_counter()
    serial_reports = {}
    for key in cells:
        capp, cdataset, num_pes, cmap_bytes = key
        serial_reports[key] = simulate(
            load_dataset(cdataset),
            _plan(capp),
            _sim_cell_config(capp, num_pes, cmap_bytes),
        )
    sweep_serial_s = time.perf_counter() - start

    pool_workers = os.cpu_count() or 1
    pool_harness = Harness(metrics=h.metrics)
    start = time.perf_counter()
    pooled = pool_harness.sim_many(cells, workers=pool_workers)
    sweep_pool_s = time.perf_counter() - start
    for key, report in pooled.items():
        if report.as_dict() != serial_reports[key].as_dict():
            raise AssertionError(
                f"cell-pool report drift on {key}"
            )

    # Legacy sweep (the denominator the >=3x target is measured from).
    start = time.perf_counter()
    for key in cells:
        capp, cdataset, num_pes, cmap_bytes = key
        simulate(
            load_dataset(cdataset),
            _plan(capp),
            dataclasses.replace(
                _sim_cell_config(capp, num_pes, cmap_bytes),
                timing_kernels=False,
            ),
        )
    sweep_legacy_s = time.perf_counter() - start

    payload = {
        "quick_mode": quick_mode(),
        "cpu_count": os.cpu_count(),
        "pool_workers": pool_workers,
        "targets": {
            "sweep_speedup": 3.0,
            "note": "legacy serial sweep vs pooled fast sweep; assumes "
                    "a multi-core host — single-core boxes log the "
                    "serial-kernel gain only",
        },
        "cell": {f"{app}_{dataset}": cell_entry},
        "sweep": {
            "cells": [list(c) for c in cells],
            "legacy_seconds": sweep_legacy_s,
            "serial_seconds": sweep_serial_s,
            "pool_seconds": sweep_pool_s,
            "pool_speedup_vs_serial": (
                sweep_serial_s / sweep_pool_s if sweep_pool_s else 0.0
            ),
            "speedup_vs_legacy": (
                sweep_legacy_s / sweep_pool_s if sweep_pool_s else 0.0
            ),
        },
        "metrics": {
            "sim.wall_s": h.metrics.gauge("sim.wall_s").value,
            "sim.cells_per_s": h.metrics.gauge("sim.cells_per_s").value,
        },
    }
    log.info(
        "sim bench: fast %.2fx serial, sweep %.2fx vs legacy "
        "(%d pool workers)",
        cell_entry["fast_speedup"],
        payload["sweep"]["speedup_vs_legacy"],
        pool_workers,
    )
    return payload


def write_sim_bench(
    path: Optional[str] = None, harness: Optional[Harness] = None
) -> str:
    """Write ``BENCH_sim.json`` (the cross-PR diffable artifact)."""
    h = harness or get_harness()
    payload = sim_bench(h)
    if path is None:
        base = h.telemetry_dir or "."
        os.makedirs(base, exist_ok=True)
        path = os.path.join(base, "BENCH_sim.json")
    write_report(path, make_report("bench-sim", payload))
    log.info("sim bench written to %s", path)
    return path
