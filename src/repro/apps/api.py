"""The four GPM applications (paper §II-A) over a single public API.

* :func:`triangle_count` (TC)
* :func:`clique_count` (k-CL)
* :func:`subgraph_list` (SL, edge-induced, arbitrary pattern)
* :func:`motif_count` (k-MC, vertex-induced, multi-pattern)

Every app accepts a ``backend``:

* ``"engine"`` — the pattern-aware software reference (GraphZero model);
* ``"cmap"`` — the software vector-c-map engine;
* ``"oblivious"`` — the pattern-oblivious baseline (Gramer model);
* ``"sim"`` — the FlexMiner cycle-level simulator (pass ``config``).

Engine backends return a :class:`~repro.engine.explore.MiningResult`;
the simulator returns a :class:`~repro.hw.report.SimReport`.  Both expose
``counts``.

The ``"engine"`` backend additionally accepts ``workers=N`` to mine with
the multi-process :class:`~repro.engine.parallel.ParallelMiner` over a
shared-memory copy of the graph, or ``pool=`` — a resident
:class:`~repro.engine.pool.MinerPool` — to serve the request from
already-forked workers (a caller answering many app requests creates
the pool once and passes it to every call).

``service=`` goes one step further: pass a resident
:class:`~repro.serve.MiningService` and the request routes through its
graph registry and plan/result caches (the graph auto-registers on
first use).  The return value is still a :class:`MiningResult`, bit-
identical to the direct engine — see ``docs/serving.md``.
"""

from __future__ import annotations

from typing import Optional, Union

from ..compiler import compile_motifs, compile_pattern
from ..engine import (
    CMapSoftwareEngine,
    MiningResult,
    ObliviousEngine,
    ParallelMiner,
    PatternAwareEngine,
)
from ..errors import ConfigError
from ..graph import CSRGraph
from ..hw import FlexMinerConfig, SimReport, simulate
from ..patterns import Pattern, enumerate_motifs, k_clique

__all__ = [
    "triangle_count",
    "clique_count",
    "subgraph_list",
    "motif_count",
    "run_app",
    "APP_NAMES",
]

Result = Union[MiningResult, SimReport]

APP_NAMES = ("TC", "k-CL", "SL", "k-MC")


def _served(
    service,
    graph,
    *,
    backend: str,
    workers: int,
    pool,
    collect: bool = False,
    batch_frontier: bool = False,
    **request_fields,
) -> MiningResult:
    """Route one app call through a resident MiningService."""
    if backend != "engine":
        raise ConfigError(
            "service= requires the 'engine' backend (the service mines "
            "on PatternAwareEngine pool workers)"
        )
    if pool is not None or workers > 1:
        raise ConfigError(
            "service= owns its worker pools; drop workers=/pool="
        )
    if batch_frontier:
        raise ConfigError(
            "service= fixes engine options at construction; build the "
            "MiningService with batch_frontier=True instead"
        )
    if collect:
        raise ConfigError("the mining service does not collect embeddings")
    response = service.request_for(graph, **request_fields)
    return MiningResult(
        counts=response.counts, counters=response.counters
    )


def _run(
    graph: CSRGraph,
    plan,
    patterns,
    *,
    backend: str,
    induced: bool,
    config: Optional[FlexMinerConfig],
    collect: bool,
    workers: int = 1,
    pool=None,
    batch_frontier: bool = False,
    profiler=None,
) -> Result:
    if (workers > 1 or pool is not None) and backend != "engine":
        raise ConfigError(
            "workers > 1 (and pool=) require the 'engine' backend (the "
            "parallel miner runs PatternAwareEngine workers)"
        )
    if batch_frontier and backend != "engine":
        raise ConfigError(
            "batch_frontier=True requires the 'engine' backend (the "
            "level-synchronous frontier mode is a PatternAwareEngine "
            "feature)"
        )
    if backend == "engine":
        if pool is not None:
            if collect:
                raise ConfigError(
                    "the worker pool does not collect embeddings"
                )
            if batch_frontier:
                raise ConfigError(
                    "a resident pool fixes engine options at "
                    "construction; build the MinerPool with "
                    "batch_frontier=True instead"
                )
            return pool.mine(plan)
        if workers > 1:
            if collect:
                raise ConfigError(
                    "the parallel miner does not collect embeddings"
                )
            return ParallelMiner(
                graph, plan, workers=workers,
                batch_frontier=batch_frontier, profiler=profiler,
            ).mine()
        return PatternAwareEngine(
            graph, plan, collect=collect,
            batch_frontier=batch_frontier, profiler=profiler,
        ).run()
    if backend == "cmap":
        return CMapSoftwareEngine(graph, plan, collect=collect).run()
    if backend == "oblivious":
        return ObliviousEngine(graph, patterns, induced=induced).run(
            collect=collect
        )
    if backend == "sim":
        if collect:
            raise ConfigError("the simulator does not collect embeddings")
        return simulate(graph, plan, config, profiler=profiler)
    raise ConfigError(
        f"unknown backend {backend!r}; expected engine/cmap/oblivious/sim"
    )


def triangle_count(
    graph: CSRGraph,
    *,
    backend: str = "engine",
    config: Optional[FlexMinerConfig] = None,
    workers: int = 1,
    pool=None,
    service=None,
    batch_frontier: bool = False,
    profiler=None,
) -> Result:
    """TC: count triangles (3-cliques, orientation-optimized)."""
    return clique_count(
        graph, 3, backend=backend, config=config, workers=workers,
        pool=pool, service=service, batch_frontier=batch_frontier,
        profiler=profiler,
    )


def clique_count(
    graph: CSRGraph,
    k: int,
    *,
    backend: str = "engine",
    config: Optional[FlexMinerConfig] = None,
    workers: int = 1,
    pool=None,
    service=None,
    batch_frontier: bool = False,
    profiler=None,
) -> Result:
    """k-CL: count k-cliques using the orientation technique (§V-C)."""
    if service is not None:
        return _served(
            service, graph, backend=backend, workers=workers, pool=pool,
            batch_frontier=batch_frontier, app="k-CL", k=k,
        )
    pattern = k_clique(k)
    plan = compile_pattern(pattern)
    return _run(
        graph,
        plan,
        [pattern],
        backend=backend,
        induced=False,
        config=config,
        collect=False,
        workers=workers,
        pool=pool,
        batch_frontier=batch_frontier,
        profiler=profiler,
    )


def subgraph_list(
    graph: CSRGraph,
    pattern: Pattern,
    *,
    backend: str = "engine",
    config: Optional[FlexMinerConfig] = None,
    collect: bool = False,
    workers: int = 1,
    pool=None,
    service=None,
    batch_frontier: bool = False,
    profiler=None,
) -> Result:
    """SL: enumerate edge-induced matches of an arbitrary pattern."""
    if service is not None:
        return _served(
            service, graph, backend=backend, workers=workers, pool=pool,
            collect=collect, batch_frontier=batch_frontier,
            pattern=pattern,
        )
    plan = compile_pattern(pattern, induced=False)
    return _run(
        graph,
        plan,
        [pattern],
        backend=backend,
        induced=False,
        config=config,
        collect=collect,
        workers=workers,
        pool=pool,
        batch_frontier=batch_frontier,
        profiler=profiler,
    )


def motif_count(
    graph: CSRGraph,
    k: int,
    *,
    backend: str = "engine",
    config: Optional[FlexMinerConfig] = None,
    workers: int = 1,
    pool=None,
    service=None,
    batch_frontier: bool = False,
    profiler=None,
) -> Result:
    """k-MC: count every k-vertex motif simultaneously (multi-pattern)."""
    if service is not None:
        return _served(
            service, graph, backend=backend, workers=workers, pool=pool,
            batch_frontier=batch_frontier, motif_k=k,
        )
    plan = compile_motifs(k)
    return _run(
        graph,
        plan,
        enumerate_motifs(k),
        backend=backend,
        induced=True,
        config=config,
        collect=False,
        workers=workers,
        pool=pool,
        batch_frontier=batch_frontier,
        profiler=profiler,
    )


def run_app(
    graph: CSRGraph,
    app: str,
    *,
    pattern: Optional[Pattern] = None,
    k: int = 3,
    backend: str = "engine",
    config: Optional[FlexMinerConfig] = None,
    workers: int = 1,
    pool=None,
    service=None,
    batch_frontier: bool = False,
    profiler=None,
) -> Result:
    """Dispatch by app name: 'TC', 'k-CL', 'SL' or 'k-MC'."""
    if app == "TC":
        return triangle_count(
            graph, backend=backend, config=config, workers=workers,
            pool=pool, service=service, batch_frontier=batch_frontier,
            profiler=profiler,
        )
    if app == "k-CL":
        return clique_count(
            graph, k, backend=backend, config=config, workers=workers,
            pool=pool, service=service, batch_frontier=batch_frontier,
            profiler=profiler,
        )
    if app == "SL":
        if pattern is None:
            raise ConfigError("SL needs a pattern")
        return subgraph_list(
            graph, pattern, backend=backend, config=config,
            workers=workers, pool=pool, service=service,
            batch_frontier=batch_frontier, profiler=profiler,
        )
    if app == "k-MC":
        return motif_count(
            graph, k, backend=backend, config=config, workers=workers,
            pool=pool, service=service, batch_frontier=batch_frontier,
            profiler=profiler,
        )
    raise ConfigError(f"unknown app {app!r}; expected one of {APP_NAMES}")
