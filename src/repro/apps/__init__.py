"""GPM applications: TC, k-CL, SL, k-MC."""

from .api import (
    APP_NAMES,
    clique_count,
    motif_count,
    run_app,
    subgraph_list,
    triangle_count,
)

__all__ = [
    "APP_NAMES",
    "triangle_count",
    "clique_count",
    "subgraph_list",
    "motif_count",
    "run_app",
]
