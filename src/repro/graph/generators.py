"""Synthetic graph generators.

The paper evaluates on SNAP graphs (Table I).  Those datasets are not
available offline, so this module provides deterministic generators whose
outputs match the *shape* that drives every effect the paper measures:
power-law degree distributions (RMAT-style recursive-matrix sampling),
tunable density, and community structure.  See DESIGN.md §2 for the
substitution rationale.

All generators are deterministic given ``seed`` and return symmetric
:class:`~repro.graph.csr.CSRGraph` instances without self loops or
duplicate edges, matching the paper's preprocessing.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "rmat",
    "power_law_cluster",
    "complete_graph",
    "star_graph",
    "cycle_graph",
    "path_graph",
    "grid_graph",
    "barbell_graph",
]


def erdos_renyi(
    num_vertices: int, edge_prob: float, *, seed: int = 0, name: str = ""
) -> CSRGraph:
    """G(n, p) random graph."""
    if not 0.0 <= edge_prob <= 1.0:
        raise GraphFormatError("edge_prob must be in [0, 1]")
    rng = np.random.default_rng(seed)
    iu = np.triu_indices(num_vertices, k=1)
    mask = rng.random(len(iu[0])) < edge_prob
    edges = np.stack([iu[0][mask], iu[1][mask]], axis=1)
    return CSRGraph.from_edges(
        edges, num_vertices=num_vertices, name=name or f"er{num_vertices}"
    )


def rmat(
    scale: int,
    avg_degree: float = 8.0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """RMAT (recursive matrix) power-law graph.

    Parameters mirror the Graph500 convention: ``2**scale`` vertices and
    roughly ``avg_degree`` undirected edges per vertex; (a, b, c, d) are
    the recursive quadrant probabilities with ``d = 1 - a - b - c``.
    RMAT's skewed quadrants produce the heavy-tailed degree distribution
    characteristic of the SNAP graphs in Table I.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphFormatError("RMAT probabilities must be non-negative")
    n = 1 << scale
    num_edges = int(n * avg_degree / 2)
    rng = np.random.default_rng(seed)

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for _ in range(scale):
        r = rng.random(num_edges)
        right = r >= a + c  # quadrant B or D -> dst high bit set
        down = ((r >= a) & (r < a + c)) | (r >= a + b + c)  # C or D -> src
        src = (src << 1) | down.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)

    edges = np.stack([src, dst], axis=1)
    return CSRGraph.from_edges(
        edges, num_vertices=n, name=name or f"rmat{scale}"
    )


def power_law_cluster(
    num_vertices: int,
    attach_edges: int,
    triangle_prob: float,
    *,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """Holme–Kim powerlaw cluster graph (preferential attachment + triads).

    Produces power-law degrees *and* high clustering, which is the property
    that makes c-map reuse abundant on dense graphs like the paper's Mi
    (mico).  Implemented directly (no networkx dependency) so benches stay
    fast and deterministic.
    """
    if attach_edges < 1 or attach_edges >= num_vertices:
        raise GraphFormatError("attach_edges must be in [1, num_vertices)")
    rng = np.random.default_rng(seed)
    adjacency: list[set[int]] = [set() for _ in range(num_vertices)]
    # Repeated-nodes list implements preferential attachment in O(1).
    repeated: list[int] = []

    seed_size = attach_edges + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            adjacency[u].add(v)
            adjacency[v].add(u)
            repeated.extend((u, v))

    for u in range(seed_size, num_vertices):
        targets: set[int] = set()
        while len(targets) < attach_edges:
            candidate = int(repeated[rng.integers(len(repeated))])
            if candidate == u or candidate in targets:
                continue
            targets.add(candidate)
            # Triad step: also connect to a random neighbor of the target.
            if (
                rng.random() < triangle_prob
                and len(targets) < attach_edges
                and adjacency[candidate]
            ):
                friends = [
                    w
                    for w in adjacency[candidate]
                    if w != u and w not in targets
                ]
                if friends:
                    targets.add(int(friends[rng.integers(len(friends))]))
        for v in targets:
            adjacency[u].add(v)
            adjacency[v].add(u)
            repeated.extend((u, v))

    edges = [(u, v) for u in range(num_vertices) for v in adjacency[u] if u < v]
    return CSRGraph.from_edges(
        edges, num_vertices=num_vertices, name=name or f"plc{num_vertices}"
    )


def complete_graph(num_vertices: int, *, name: str = "") -> CSRGraph:
    """K_n: every pair of distinct vertices connected."""
    edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(u + 1, num_vertices)
    ]
    return CSRGraph.from_edges(
        edges, num_vertices=num_vertices, name=name or f"K{num_vertices}"
    )


def star_graph(num_leaves: int, *, name: str = "") -> CSRGraph:
    """Vertex 0 connected to ``num_leaves`` leaves."""
    edges = [(0, i) for i in range(1, num_leaves + 1)]
    return CSRGraph.from_edges(
        edges, num_vertices=num_leaves + 1, name=name or f"star{num_leaves}"
    )


def cycle_graph(num_vertices: int, *, name: str = "") -> CSRGraph:
    """Simple cycle of ``num_vertices`` >= 3 vertices."""
    if num_vertices < 3:
        raise GraphFormatError("cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % num_vertices) for i in range(num_vertices)]
    return CSRGraph.from_edges(
        edges, num_vertices=num_vertices, name=name or f"C{num_vertices}"
    )


def path_graph(num_vertices: int, *, name: str = "") -> CSRGraph:
    """Simple path of ``num_vertices`` vertices."""
    edges = [(i, i + 1) for i in range(num_vertices - 1)]
    return CSRGraph.from_edges(
        edges, num_vertices=num_vertices, name=name or f"P{num_vertices}"
    )


def grid_graph(rows: int, cols: int, *, name: str = "") -> CSRGraph:
    """rows x cols 2-D lattice (used as a triangle-free stress input)."""
    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return CSRGraph.from_edges(
        edges, num_vertices=rows * cols, name=name or f"grid{rows}x{cols}"
    )


def barbell_graph(clique_size: int, path_len: int, *, name: str = "") -> CSRGraph:
    """Two K_n cliques joined by a path (skewed task-size stress input)."""
    edges = []
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            edges.append((u, v))
            edges.append((clique_size + path_len + u, clique_size + path_len + v))
    chain = [clique_size - 1] + [clique_size + i for i in range(path_len)] + [
        clique_size + path_len
    ]
    edges.extend(zip(chain, chain[1:]))
    n = 2 * clique_size + path_len
    return CSRGraph.from_edges(
        edges, num_vertices=n, name=name or f"barbell{clique_size}"
    )
