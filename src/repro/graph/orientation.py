"""DAG orientation of undirected graphs (paper §V-C).

The FlexMiner compiler applies the *orientation* technique when it detects a
k-clique pattern: every undirected edge (u, v) is kept only in the direction
from the "smaller" endpoint to the "larger" one, where endpoints are
compared by degree first and vertex id on ties.  After orientation no
symmetry-order checks are needed at runtime, because each clique is
discovered exactly once (its vertices must appear in increasing orientation
rank).

The paper notes the preprocessing cost is usually below 1% of mining time
and that the oriented graph is reusable for any k-CL.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = ["orient_by_degree", "orientation_rank"]


def orientation_rank(graph: CSRGraph) -> np.ndarray:
    """Total-order rank used for orientation: (degree, vertex id).

    Returns an array ``rank`` such that ``rank[u] < rank[v]`` iff u precedes
    v in the orientation order.  Lower degree comes first; ties break by
    vertex id, matching the commonly used approach the paper describes.
    """
    degrees = graph.degrees()
    # lexsort's last key is primary.
    order = np.lexsort((np.arange(graph.num_vertices), degrees))
    rank = np.empty(graph.num_vertices, dtype=np.int64)
    rank[order] = np.arange(graph.num_vertices)
    return rank


def orient_by_degree(graph: CSRGraph) -> CSRGraph:
    """Return the degree-ordered DAG version of an undirected graph.

    Each undirected edge (u, v) becomes a single arc from the lower-ranked
    endpoint to the higher-ranked one.  The result has
    ``num_directed_edges == graph.num_edges``.
    """
    rank = orientation_rank(graph)
    edges = [
        (u, v) for u, v in graph.edges() if rank[u] < rank[v]
    ] + [(v, u) for u, v in graph.edges() if rank[v] < rank[u]]
    return CSRGraph.from_edges(
        edges,
        num_vertices=graph.num_vertices,
        directed=True,
        name=graph.name + "-dag" if graph.name else "dag",
    )
