"""Compressed sparse row (CSR) graph representation.

This is the data-graph substrate FlexMiner operates on (paper §VII-A):
symmetric graphs without self loops or duplicate edges, stored in CSR with
each neighbor list sorted by ascending vertex id.  Sorted adjacency is what
makes the merge-based SIU/SDU set operations (paper Fig. 9) and the binary
search connectivity check possible.

The same class also represents *directed* graphs, which is how the k-clique
orientation optimization (paper §V-C) stores the DAG version of a data
graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphFormatError

__all__ = [
    "CSRGraph",
    "SharedCSRBuffers",
    "attach_array",
    "attach_shared_csr",
    "share_array",
]

_INDEX_DTYPE = np.int64
_VERTEX_DTYPE = np.int32


class CSRGraph:
    """An immutable graph in compressed sparse row form.

    Parameters
    ----------
    indptr:
        Array of ``num_vertices + 1`` offsets into ``indices``.
    indices:
        Concatenated neighbor lists.  Each per-vertex slice must be sorted
        in ascending order and free of duplicates.
    directed:
        ``False`` (default) means the adjacency is symmetric: for every
        edge (u, v), v appears in u's list and u in v's list.  ``True`` is
        used for oriented (DAG) graphs where each undirected edge is kept
        exactly once.
    name:
        Optional human-readable dataset name (e.g. ``"Mi"``).

    Notes
    -----
    The arrays are stored with ``writeable = False`` so neighbor-list views
    handed out by :meth:`neighbors` cannot be mutated by accident.
    """

    __slots__ = ("_indptr", "_indices", "_directed", "_name", "_degrees", "_shm")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        directed: bool = False,
        name: str = "",
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=_INDEX_DTYPE)
        indices = np.ascontiguousarray(indices, dtype=_VERTEX_DTYPE)
        if validate:
            _validate_csr(indptr, indices, directed)
        indptr.flags.writeable = False
        indices.flags.writeable = False
        self._indptr = indptr
        self._indices = indices
        self._directed = bool(directed)
        self._name = name
        self._degrees: Optional[np.ndarray] = None
        #: Shared-memory handles keeping attached buffers mapped for the
        #: lifetime of the graph (see :func:`attach_shared_csr`).
        self._shm: Tuple = ()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        *,
        num_vertices: int | None = None,
        directed: bool = False,
        name: str = "",
    ) -> "CSRGraph":
        """Build a graph from an iterable of (u, v) pairs.

        For undirected graphs each input edge is inserted in both
        directions.  Self loops and duplicate edges are silently dropped,
        matching the paper's preprocessed inputs (Table I caption).
        """
        pairs = np.asarray(list(edges), dtype=np.int64)
        if pairs.size == 0:
            n = int(num_vertices or 0)
            return cls(
                np.zeros(n + 1, dtype=_INDEX_DTYPE),
                np.empty(0, dtype=_VERTEX_DTYPE),
                directed=directed,
                name=name,
            )
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise GraphFormatError("edges must be (u, v) pairs")
        if pairs.min() < 0:
            raise GraphFormatError("vertex ids must be non-negative")

        pairs = pairs[pairs[:, 0] != pairs[:, 1]]  # drop self loops
        if not directed:
            pairs = np.concatenate([pairs, pairs[:, ::-1]])

        n = int(num_vertices) if num_vertices is not None else int(pairs.max()) + 1
        if pairs.size and pairs.max() >= n:
            raise GraphFormatError(
                f"edge endpoint {int(pairs.max())} out of range for "
                f"{n} vertices"
            )

        # Sort by (src, dst) then deduplicate.
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        pairs = pairs[order]
        if len(pairs):
            keep = np.ones(len(pairs), dtype=bool)
            keep[1:] = np.any(pairs[1:] != pairs[:-1], axis=1)
            pairs = pairs[keep]

        counts = np.bincount(pairs[:, 0], minlength=n)
        indptr = np.zeros(n + 1, dtype=_INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        indices = pairs[:, 1].astype(_VERTEX_DTYPE)
        return cls(indptr, indices, directed=directed, name=name, validate=False)

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Sequence[Sequence[int]],
        *,
        directed: bool = False,
        name: str = "",
    ) -> "CSRGraph":
        """Build a graph from a list of neighbor lists (need not be sorted)."""
        edges = [
            (u, v) for u, neighbors in enumerate(adjacency) for v in neighbors
        ]
        return cls.from_edges(
            edges, num_vertices=len(adjacency), directed=directed, name=name
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def num_vertices(self) -> int:
        return len(self._indptr) - 1

    @property
    def num_directed_edges(self) -> int:
        """Number of stored adjacency entries."""
        return len(self._indices)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (entries / 2 for symmetric graphs)."""
        if self._directed:
            return len(self._indices)
        return len(self._indices) // 2

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        return self._indices

    def degree(self, v: int) -> int:
        """Out-degree of ``v`` (degree for symmetric graphs)."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees (computed once, then cached).

        Orientation, scheduling, and parallel dispatch all consult this
        vector; the graph is immutable, so the ``np.diff`` runs once.
        """
        if self._degrees is None:
            degrees = np.diff(self._indptr)
            degrees.flags.writeable = False
            self._degrees = degrees
        return self._degrees

    def max_degree(self) -> int:
        if self.num_vertices == 0:
            return 0
        return int(self.degrees().max())

    def avg_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return len(self._indices) / self.num_vertices

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor list of ``v`` as a read-only array view."""
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def gather_neighbors(
        self, vertices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated neighbor lists of many vertices plus offsets.

        Returns ``(concat, offsets)`` where the neighbor list of
        ``vertices[i]`` is ``concat[offsets[i]:offsets[i+1]]``.  The
        gather is fully vectorized (one fancy-index over ``indices``),
        which is what the engine's batch-frontier leaf kernel feeds to
        :func:`repro.engine.kernels.segmented_intersect_count` — a whole
        frontier of adjacency slices in one call instead of one
        ``neighbors()`` view per Python-loop iteration.
        """
        verts = np.asarray(vertices, dtype=np.int64)
        starts = self._indptr[verts]
        lengths = self._indptr[verts + 1] - starts
        offsets = np.zeros(len(verts) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        if total == 0:
            return self._indices[:0], offsets
        # positions[k] walks each segment: segment start + local offset.
        positions = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets[:-1], lengths)
            + np.repeat(starts, lengths)
        )
        return self._indices[positions], offsets

    def has_edge(self, u: int, v: int) -> bool:
        """Connectivity test via binary search on u's sorted neighbor list."""
        lst = self.neighbors(u)
        pos = int(np.searchsorted(lst, v))
        return pos < len(lst) and int(lst[pos]) == v

    def vertices(self) -> range:
        return range(self.num_vertices)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges once as (u, v) with u < v.

        For directed graphs, iterate every stored arc.
        """
        for u in self.vertices():
            for v in self.neighbors(u):
                v = int(v)
                if self._directed or u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :mod:`networkx` graph (DiGraph when directed)."""
        import networkx as nx

        g = nx.DiGraph() if self._directed else nx.Graph()
        g.add_nodes_from(self.vertices())
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g, *, name: str = "") -> "CSRGraph":
        """Build from a networkx (Di)Graph with integer-labelable nodes."""
        import networkx as nx

        mapping = {node: i for i, node in enumerate(sorted(g.nodes()))}
        directed = isinstance(g, nx.DiGraph)
        edges = [(mapping[u], mapping[v]) for u, v in g.edges()]
        return cls.from_edges(
            edges,
            num_vertices=g.number_of_nodes(),
            directed=directed,
            name=name,
        )

    # ------------------------------------------------------------------
    # Memory layout metadata (used by the timing simulator)
    # ------------------------------------------------------------------
    def edgelist_bytes(self, v: int) -> int:
        """Size of v's neighbor list in bytes (4-byte vertex ids)."""
        return 4 * self.degree(v)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self._directed == other._directed
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return object.__hash__(self)

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        label = f" {self._name!r}" if self._name else ""
        return (
            f"CSRGraph({kind}{label}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )


# ----------------------------------------------------------------------
# Shared-memory CSR (zero-copy views for multi-process mining)
# ----------------------------------------------------------------------
#
# The parallel miner hands each worker process a *name*, not the arrays:
# the parent copies ``indptr``/``indices`` into POSIX shared memory once
# and workers map the same pages read-only.  Nothing graph-sized crosses
# a pipe, so attach cost is independent of graph size.


def share_array(arr: np.ndarray):
    """Copy an array into a new shared-memory block.

    Returns ``(shm, spec)`` where ``shm`` is the parent-side
    ``SharedMemory`` handle (owner: close + unlink when done) and
    ``spec`` is a small picklable dict :func:`attach_array` accepts.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    try:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        if arr.size:
            view[:] = arr
        spec = {
            "shm": shm.name,
            "shape": tuple(arr.shape),
            "dtype": str(arr.dtype),
        }
    except BaseException:
        # the caller never saw the handle; reap the segment or it
        # outlives the process (unlink even if close itself raises)
        try:
            shm.close()
        finally:
            shm.unlink()
        raise
    return shm, spec


def _attach_block(name: str):
    """Attach an existing shared-memory block without claiming ownership.

    Attaching registers the segment with the resource tracker a second
    time, but worker processes inherit the *parent's* tracker (the
    parent always creates the segments, and therefore the tracker,
    before forking/spawning workers) and the tracker's cache is a set —
    so the duplicate registration is a no-op and the parent's final
    unlink clears the single entry.  Workers must *not* unregister: with
    a shared tracker that would strip the parent's registration and turn
    the parent's cleanup into a tracker error.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def attach_array(spec: Dict[str, object]):
    """Map a shared array by spec; returns ``(array, shm_handle)``.

    The caller must keep ``shm_handle`` alive as long as the array is in
    use (the array is a view over the mapped buffer).
    """
    shm = _attach_block(str(spec["shm"]))
    arr = np.ndarray(
        tuple(spec["shape"]), dtype=np.dtype(str(spec["dtype"])), buffer=shm.buf
    )
    return arr, shm


class SharedCSRBuffers:
    """Parent-side owner of shared-memory copies of a graph's CSR arrays.

    Usage::

        with SharedCSRBuffers(graph) as shared:
            start_workers(shared.spec)   # workers call attach_shared_csr

    Exiting the ``with`` block closes and unlinks the segments; workers
    that attached before then keep their mappings until they exit.
    """

    def __init__(self, graph: "CSRGraph") -> None:
        self._shms: List = []
        indptr_spec = self._share(graph.indptr)
        indices_spec = self._share(graph.indices)
        self.spec: Dict[str, object] = {
            "directed": graph.directed,
            "name": graph.name,
            "indptr": indptr_spec,
            "indices": indices_spec,
        }

    def _share(self, arr: np.ndarray) -> Dict[str, object]:
        shm, spec = share_array(arr)
        self._shms.append(shm)
        return spec

    def close(self) -> None:
        for shm in self._shms:
            shm.close()

    def unlink(self) -> None:
        for shm in self._shms:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedCSRBuffers":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


def attach_shared_csr(spec: Dict[str, object]) -> CSRGraph:
    """Rebuild a :class:`CSRGraph` over shared-memory buffers.

    The returned graph holds the mapping handles internally, so it (and
    every neighbor-list view it hands out) stays valid for the graph's
    lifetime.  The arrays were validated when the source graph was
    built, so validation is skipped.
    """
    handles: List = []
    indptr, shm = attach_array(spec["indptr"])  # type: ignore[arg-type]
    handles.append(shm)
    indices, shm = attach_array(spec["indices"])  # type: ignore[arg-type]
    handles.append(shm)
    graph = CSRGraph(
        indptr,
        indices,
        directed=bool(spec["directed"]),
        name=str(spec["name"]),
        validate=False,
    )
    graph._shm = tuple(handles)
    return graph


def _validate_csr(indptr: np.ndarray, indices: np.ndarray, directed: bool) -> None:
    if indptr.ndim != 1 or len(indptr) == 0:
        raise GraphFormatError("indptr must be a 1-D array of length n+1")
    if int(indptr[0]) != 0 or int(indptr[-1]) != len(indices):
        raise GraphFormatError("indptr must start at 0 and end at len(indices)")
    if np.any(np.diff(indptr) < 0):
        raise GraphFormatError("indptr must be non-decreasing")
    n = len(indptr) - 1
    if len(indices) and (indices.min() < 0 or indices.max() >= n):
        raise GraphFormatError("neighbor ids out of range")
    for v in range(n):
        row = indices[indptr[v] : indptr[v + 1]]
        if len(row) > 1 and np.any(np.diff(row) <= 0):
            raise GraphFormatError(
                f"neighbor list of vertex {v} is not strictly sorted"
            )
        if len(row) and np.any(row == v):
            raise GraphFormatError(f"self loop at vertex {v}")
    if not directed:
        # Symmetry check: edge (u, v) implies (v, u).
        src = np.repeat(np.arange(n), np.diff(indptr))
        fwd = set(zip(src.tolist(), indices.tolist()))
        for u, v in fwd:
            if (v, u) not in fwd:
                raise GraphFormatError(
                    f"graph marked undirected but edge ({u}, {v}) has no "
                    f"reverse"
                )
