"""Graph substrate: CSR graphs, generators, orientation, IO, statistics."""

from .csr import (
    CSRGraph,
    SharedCSRBuffers,
    attach_array,
    attach_shared_csr,
    share_array,
)
from .generators import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    power_law_cluster,
    rmat,
    star_graph,
)
from .io import load_edge_list, load_graph, load_mtx, save_edge_list
from .orientation import orient_by_degree, orientation_rank
from .stats import GraphStats, degree_histogram, graph_stats, power_law_exponent
from .datasets import DATASET_NAMES, SMALL_SUITE, load_dataset, load_suite, suite_stats
from .sample import induced_subgraph, random_vertex_sample
from .labels import LabeledGraph, assign_degree_labels, assign_random_labels

__all__ = [
    "CSRGraph",
    "SharedCSRBuffers",
    "attach_array",
    "attach_shared_csr",
    "share_array",
    "erdos_renyi",
    "rmat",
    "power_law_cluster",
    "complete_graph",
    "star_graph",
    "cycle_graph",
    "path_graph",
    "grid_graph",
    "barbell_graph",
    "load_edge_list",
    "save_edge_list",
    "load_mtx",
    "load_graph",
    "orient_by_degree",
    "orientation_rank",
    "GraphStats",
    "graph_stats",
    "degree_histogram",
    "power_law_exponent",
    "DATASET_NAMES",
    "SMALL_SUITE",
    "load_dataset",
    "load_suite",
    "suite_stats",
    "induced_subgraph",
    "random_vertex_sample",
    "LabeledGraph",
    "assign_random_labels",
    "assign_degree_labels",
]
