"""The evaluation dataset suite (stand-ins for the paper's Table I graphs).

The paper evaluates on the Gramer input graphs: As, Mi (mico), Pa
(patents), Yo (youtube), Lj (LiveJournal) and Or (orkut).  Those SNAP
datasets are unavailable offline, so this module builds deterministic
synthetic stand-ins that preserve the properties the evaluation depends on
(DESIGN.md §2):

* **relative size ordering**: As smallest, then Mi, Pa, Yo, Lj, Or;
* **density ordering**: Mi is the densest (the paper quotes avg degree 21
  and credits Mi's density for its consistently high c-map reuse), Or is
  dense and large, Pa/Yo are large and sparse;
* **heavy-tailed degrees**: all stand-ins are RMAT/power-law style so
  high-degree vertices are rare (the property behind "a 4 kB c-map already
  captures most of the benefit", §VII-C).

Scale is reduced ~3 orders of magnitude because pure-Python cycle
simulation is ~6 orders slower than the authors' C++ simulator.
"""

from __future__ import annotations

import time
from typing import Dict, List

from ..obs.log import get_logger
from .csr import CSRGraph
from .generators import power_law_cluster, rmat
from .stats import GraphStats, graph_stats

log = get_logger("graph.datasets")

__all__ = [
    "DATASET_NAMES",
    "SMALL_SUITE",
    "load_dataset",
    "load_suite",
    "suite_stats",
]

#: All stand-in dataset names, ordered as in the paper's Table I usage.
DATASET_NAMES = ("As", "Mi", "Pa", "Yo", "Lj", "Or")

#: The subset most figures sweep (Lj/Or appear only in selected rows).
SMALL_SUITE = ("As", "Mi", "Pa", "Yo")

_CACHE: Dict[str, CSRGraph] = {}


def load_dataset(name: str) -> CSRGraph:
    """Build (or fetch from the in-process cache) one stand-in dataset."""
    if name in _CACHE:
        return _CACHE[name]
    builders = {
        # As: the smallest dataset; moderate density.  Its small task count
        # is what makes it scale worst in Fig. 15.
        "As": lambda: rmat(9, avg_degree=8.0, seed=11, name="As"),
        # Mi (mico): densest graph, avg degree ~21, high clustering -> the
        # abundant c-map reuse the paper highlights in §VII-C.
        "Mi": lambda: power_law_cluster(768, 11, 0.6, seed=23, name="Mi"),
        # Pa (patents): large and sparse with poor locality (65.9% L2 miss
        # rate in the paper) -> memory bound TC.
        "Pa": lambda: rmat(11, avg_degree=5.0, seed=37, name="Pa"),
        # Yo (youtube): large, sparse, very skewed maximum degree.
        "Yo": lambda: rmat(11, avg_degree=8.0, a=0.63, b=0.17, c=0.17,
                           seed=41, name="Yo"),
        # Lj (LiveJournal): largest of the figure suite, more triangles
        # than Yo (the paper uses this to explain TC behaviour).
        "Lj": lambda: power_law_cluster(4096, 7, 0.35, seed=53, name="Lj"),
        # Or (orkut): big and dense; only used for TC in §VII-D.
        "Or": lambda: power_law_cluster(6144, 15, 0.25, seed=67, name="Or"),
    }
    if name not in builders:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
        )
    started = time.perf_counter()
    graph = builders[name]()
    log.debug(
        "built dataset %s: %d vertices, %d edges in %.2fs",
        name, graph.num_vertices, graph.num_edges,
        time.perf_counter() - started,
    )
    _CACHE[name] = graph
    return graph


def load_suite(names=DATASET_NAMES) -> List[CSRGraph]:
    """Load several datasets in order."""
    return [load_dataset(name) for name in names]


def suite_stats(names=DATASET_NAMES) -> List[GraphStats]:
    """Table I rows for the requested datasets."""
    return [graph_stats(g) for g in load_suite(names)]
