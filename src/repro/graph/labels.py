"""Vertex labels for data graphs.

The paper's motivating application — protein-function prediction — mines
*labeled* graphs: "vertices represent proteins labeled with their
functionality".  The evaluated apps are unlabeled, but state-of-the-art
GPM systems (Peregrine, AutoMine) support labels, and FlexMiner's
interface inherits that generality: a label constraint is just one more
pruner check.

Labels live in a side array so :class:`~repro.graph.csr.CSRGraph` stays
a pure topology object; :class:`LabeledGraph` pairs the two.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph
from .orientation import orient_by_degree

__all__ = ["LabeledGraph", "assign_random_labels", "assign_degree_labels"]


class LabeledGraph:
    """A CSR graph plus one integer label per vertex.

    Exposes the full read API of :class:`CSRGraph` by delegation, so
    every engine accepts either type; the engines consult ``labels``
    only when the plan carries label constraints.
    """

    def __init__(self, graph: CSRGraph, labels: np.ndarray) -> None:
        labels = np.ascontiguousarray(labels, dtype=np.int32)
        if len(labels) != graph.num_vertices:
            raise GraphFormatError(
                f"{len(labels)} labels for {graph.num_vertices} vertices"
            )
        if len(labels) and labels.min() < 0:
            raise GraphFormatError("labels must be non-negative")
        labels.flags.writeable = False
        self.graph = graph
        self.labels = labels

    # -- delegation of the topology API --------------------------------
    def __getattr__(self, name):
        return getattr(self.graph, name)

    @property
    def num_labels(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def label(self, v: int) -> int:
        return int(self.labels[v])

    def vertices_with_label(self, label: int) -> np.ndarray:
        return np.nonzero(self.labels == label)[0]

    def oriented(self) -> "LabeledGraph":
        """Degree-ordered DAG with the same labels."""
        return LabeledGraph(orient_by_degree(self.graph), self.labels)

    def __repr__(self) -> str:
        return (
            f"LabeledGraph({self.graph!r}, {self.num_labels} labels)"
        )


def assign_random_labels(
    graph: CSRGraph, num_labels: int, *, seed: int = 0
) -> LabeledGraph:
    """Uniform random labels (deterministic per seed)."""
    if num_labels < 1:
        raise GraphFormatError("need at least one label")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_labels, size=graph.num_vertices)
    return LabeledGraph(graph, labels)


def assign_degree_labels(
    graph: CSRGraph, thresholds: Optional[list] = None
) -> LabeledGraph:
    """Label vertices by degree bucket (hubs vs leaves).

    Useful in tests: degree-correlated labels exercise the interaction
    of label filters with the degree-skew that drives GPM cost.
    """
    thresholds = thresholds if thresholds is not None else [2, 8, 32]
    degrees = graph.degrees()
    labels = np.zeros(graph.num_vertices, dtype=np.int32)
    for bound in thresholds:
        labels += (degrees >= bound).astype(np.int32)
    return LabeledGraph(graph, labels)
