"""Graph file input/output.

Supports the two formats GPM papers commonly ship graphs in:

* **edge list**: one ``u v`` pair per line, ``#`` comments allowed (SNAP
  convention).
* **Matrix Market** coordinate pattern files (``.mtx``), the format used by
  the SuiteSparse collection that hosts mico/patents-style graphs.
"""

from __future__ import annotations

import os
from typing import Union

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = ["load_edge_list", "save_edge_list", "load_mtx", "load_graph"]

PathLike = Union[str, "os.PathLike[str]"]


def load_edge_list(path: PathLike, *, name: str = "") -> CSRGraph:
    """Load a whitespace-separated edge list with optional ``#`` comments."""
    edges = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v', got {line!r}"
                )
            try:
                edges.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex id"
                ) from exc
    return CSRGraph.from_edges(
        edges, name=name or os.path.basename(str(path))
    )


def save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write the graph as a sorted edge list (one direction per edge)."""
    with open(path, "w") as f:
        f.write(f"# {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        for u, v in graph.edges():
            f.write(f"{u} {v}\n")


def load_mtx(path: PathLike, *, name: str = "") -> CSRGraph:
    """Load a Matrix Market coordinate file as an undirected graph.

    Vertex ids in ``.mtx`` are 1-based; they are shifted to 0-based.
    Only the (row, col) structure is used; any values are ignored.
    """
    edges = []
    header_seen = False
    size_seen = False
    num_vertices = 0
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("%"):
                header_seen = True
                continue
            parts = line.split()
            if not size_seen:
                if len(parts) < 3:
                    raise GraphFormatError(
                        f"{path}:{lineno}: malformed size line"
                    )
                rows, cols = int(parts[0]), int(parts[1])
                num_vertices = max(rows, cols)
                size_seen = True
                continue
            u, v = int(parts[0]) - 1, int(parts[1]) - 1
            edges.append((u, v))
    if not header_seen and not size_seen:
        raise GraphFormatError(f"{path}: not a Matrix Market file")
    return CSRGraph.from_edges(
        edges,
        num_vertices=num_vertices,
        name=name or os.path.basename(str(path)),
    )


def load_graph(path: PathLike, *, name: str = "") -> CSRGraph:
    """Dispatch on file extension (.mtx -> Matrix Market, else edge list)."""
    if str(path).endswith(".mtx"):
        return load_mtx(path, name=name)
    return load_edge_list(path, name=name)
