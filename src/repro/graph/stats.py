"""Graph statistics used by Table I and the compiler heuristics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphStats", "graph_stats", "degree_histogram", "power_law_exponent"]


@dataclass(frozen=True)
class GraphStats:
    """Summary row for a dataset (the columns of the paper's Table I)."""

    name: str
    num_vertices: int
    num_edges: int
    max_degree: int
    avg_degree: float

    def as_row(self) -> tuple:
        return (
            self.name,
            self.num_vertices,
            self.num_edges,
            self.max_degree,
            round(self.avg_degree, 1),
        )


def graph_stats(graph: CSRGraph) -> GraphStats:
    """Compute the Table I columns for one graph."""
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree(),
        avg_degree=graph.avg_degree(),
    )


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Histogram h where h[d] = number of vertices with degree d."""
    if graph.num_vertices == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(graph.degrees())


def power_law_exponent(graph: CSRGraph) -> float:
    """Maximum-likelihood power-law exponent estimate (Clauset et al.).

    Used in tests to check that RMAT stand-ins are actually heavy tailed.
    Degrees below ``d_min = 2`` are excluded.  Returns ``nan`` for graphs
    with too few qualifying vertices.
    """
    degrees = graph.degrees()
    d_min = 2
    tail = degrees[degrees >= d_min].astype(np.float64)
    if len(tail) < 10:
        return float("nan")
    return 1.0 + len(tail) / float(np.sum(np.log(tail / (d_min - 0.5))))
