"""Graph sampling utilities.

Used by the Table II bench: the pattern-oblivious baseline enumerates
*every* connected k-subgraph, which explodes on the full stand-ins, so
the three-system comparison runs on induced subsamples (the ordering it
demonstrates is scale-free; DESIGN.md §2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .csr import CSRGraph

__all__ = ["induced_subgraph", "random_vertex_sample"]


def induced_subgraph(
    graph: CSRGraph, vertices: Sequence[int], *, name: str = ""
) -> CSRGraph:
    """Vertex-induced subgraph, relabelled to 0..len(vertices)-1.

    The renumbering is order preserving (sorted by original id), so
    vid-comparison constraints (symmetry orders) remain valid inside the
    subgraph.  Directedness is preserved.
    """
    keep = sorted(set(int(v) for v in vertices))
    index = {v: i for i, v in enumerate(keep)}
    edges = [
        (index[u], index[v])
        for u in keep
        for v in graph.neighbors(u)
        if int(v) in index and (graph.directed or u < int(v))
    ]
    return CSRGraph.from_edges(
        edges,
        num_vertices=len(keep),
        directed=graph.directed,
        name=name or (graph.name + "-sub" if graph.name else "sub"),
    )


def random_vertex_sample(
    graph: CSRGraph, num_vertices: int, *, seed: int = 0, name: str = ""
) -> CSRGraph:
    """Induced subgraph on a uniform random vertex subset."""
    n = min(num_vertices, graph.num_vertices)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(graph.num_vertices, size=n, replace=False)
    return induced_subgraph(graph, chosen.tolist(), name=name)
