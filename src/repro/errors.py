"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphFormatError(ReproError):
    """A graph input (edge list, CSR arrays, file) is malformed."""


class PatternError(ReproError):
    """A pattern is invalid for the requested operation.

    Raised e.g. for disconnected patterns, patterns with self loops, or
    patterns larger than a component supports.
    """


class CompileError(ReproError):
    """The FlexMiner compiler could not produce an execution plan."""


class IRSyntaxError(CompileError):
    """The textual IR could not be parsed."""


class SimulationError(ReproError):
    """The hardware simulator reached an inconsistent state."""


class ConfigError(ReproError):
    """A hardware or benchmark configuration is invalid."""


class ServeError(ReproError):
    """Base class for mining-service (``repro.serve``) failures."""


class ServiceOverloaded(ServeError):
    """Admission control rejected a request: ``max_active`` reached.

    Backpressure, not failure — the caller should retry later or shed
    load.  Carries ``active`` and ``max_active`` for the caller's
    retry policy.
    """

    def __init__(self, active: int, max_active: int) -> None:
        self.active = active
        self.max_active = max_active
        super().__init__(
            f"service overloaded: {active} active request(s) at the "
            f"max_active={max_active} admission limit"
        )


class GraphNotRegistered(ServeError):
    """A request named a graph the service has not registered."""


class ServiceClosed(ServeError):
    """The mining service has been closed; no further requests."""
