"""Seeded differential fuzzer with case shrinking.

Generates random (graph, pattern) cases — ER / power-law-cluster / RMAT
topologies plus degenerate shapes (empty, self-loop-free stars,
disconnected unions, hub-heavy), labeled and unlabeled, with random
patterns and occasionally random (valid) matching orders — and pushes
each through the differential runner.  Any failing case is **shrunk**:
vertices, then edges, are greedily deleted while the failure
reproduces, so what lands in a bug report (or the regression corpus) is
a handful of vertices, not a 200-vertex power-law graph.

Everything is deterministic given ``seed``: same seed, same cases, same
verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler import enumerate_matching_orders
from ..graph import (
    CSRGraph,
    LabeledGraph,
    erdos_renyi,
    power_law_cluster,
    rmat,
)
from ..obs import get_logger
from ..patterns import Pattern, enumerate_motifs
from ..patterns import edge as edge_pattern
from .differential import (
    DifferentialReport,
    VerifyCase,
    resolve_backends,
    run_case,
)

__all__ = [
    "GRAPH_FAMILIES",
    "FuzzFailure",
    "FuzzReport",
    "fuzz",
    "random_case",
    "random_graph",
    "random_pattern",
    "shrink_case",
]

log = get_logger("verify.fuzz")

#: Topology families the generator draws from.  The degenerate shapes
#: ("empty", "star", "disconnected", "hub") exist because they are where
#: boundary bugs live: zero-length candidate lists, roots with no
#: second level, components the scheduler never visits, one adjacency
#: list dwarfing every other.
GRAPH_FAMILIES: Tuple[str, ...] = (
    "er",
    "plc",
    "rmat",
    "empty",
    "star",
    "disconnected",
    "hub",
)


def random_graph(rng: np.random.Generator, family: str) -> CSRGraph:
    """One random topology from the given family (small by design —
    every case is also run through the exponential oracle)."""
    sub_seed = int(rng.integers(0, 2**31 - 1))
    if family == "er":
        n = int(rng.integers(4, 15))
        p = float(rng.uniform(0.1, 0.6))
        return erdos_renyi(n, p, seed=sub_seed, name=f"er{n}")
    if family == "plc":
        n = int(rng.integers(8, 25))
        attach = int(rng.integers(2, 4))
        tri = float(rng.uniform(0.2, 0.8))
        return power_law_cluster(n, attach, tri, seed=sub_seed)
    if family == "rmat":
        scale = int(rng.integers(3, 5))
        avg = float(rng.uniform(2.0, 6.0))
        return rmat(scale, avg, seed=sub_seed)
    if family == "empty":
        n = int(rng.integers(0, 7))
        return CSRGraph.from_edges([], num_vertices=n, name=f"empty{n}")
    if family == "star":
        leaves = int(rng.integers(3, 13))
        edges = [(0, i) for i in range(1, leaves + 1)]
        return CSRGraph.from_edges(
            edges, num_vertices=leaves + 1, name=f"star{leaves}"
        )
    if family == "disconnected":
        n1 = int(rng.integers(3, 9))
        n2 = int(rng.integers(3, 9))
        g1 = erdos_renyi(n1, float(rng.uniform(0.3, 0.7)), seed=sub_seed)
        g2 = erdos_renyi(n2, float(rng.uniform(0.3, 0.7)), seed=sub_seed + 1)
        edges = list(g1.edges()) + [
            (u + n1, v + n1) for u, v in g2.edges()
        ]
        return CSRGraph.from_edges(
            edges, num_vertices=n1 + n2, name=f"dis{n1}+{n2}"
        )
    if family == "hub":
        # One hub adjacent to everything, sparse edges among the rest:
        # maximal degree skew with nontrivial closure.
        n = int(rng.integers(6, 16))
        edges = [(0, i) for i in range(1, n)]
        extra = int(rng.integers(0, 2 * n))
        for _ in range(extra):
            u = int(rng.integers(1, n))
            v = int(rng.integers(1, n))
            if u != v:
                edges.append((u, v))
        return CSRGraph.from_edges(edges, num_vertices=n, name=f"hub{n}")
    raise ValueError(f"unknown graph family {family!r}")


def random_pattern(
    rng: np.random.Generator,
    *,
    max_vertices: int = 4,
    num_labels: Optional[int] = None,
) -> Pattern:
    """A random connected pattern, optionally with label constraints.

    Drawn uniformly from the motif classes on 2..max_vertices vertices.
    With ``num_labels``, each pattern vertex independently gets a
    wildcard (probability ½) or a concrete label — mixing constrained
    and unconstrained vertices is exactly where label handling breaks.
    """
    pool: List[Pattern] = [edge_pattern()]
    for k in range(3, max_vertices + 1):
        pool.extend(enumerate_motifs(k))
    pattern = pool[int(rng.integers(len(pool)))]
    if num_labels is not None:
        labels = [
            None
            if rng.random() < 0.5
            else int(rng.integers(num_labels))
            for _ in range(pattern.num_vertices)
        ]
        if any(lab is not None for lab in labels):
            pattern = pattern.with_labels(labels)
    return pattern


def random_case(
    rng: np.random.Generator,
    *,
    index: int = 0,
    families: Sequence[str] = GRAPH_FAMILIES,
    patterns: Optional[Sequence[Pattern]] = None,
    max_pattern_vertices: int = 4,
    labeled_prob: float = 0.35,
    induced_prob: float = 0.4,
    random_order_prob: float = 0.3,
    motif_prob: float = 0.1,
) -> VerifyCase:
    """Draw one differential case (graph + pattern + semantics)."""
    family = families[int(rng.integers(len(families)))]
    topo = random_graph(rng, family)
    name = f"fuzz-{index}-{family}"

    # Occasionally exercise the multi-pattern (k-motif) plan instead of
    # a single pattern; per-pattern breakdowns are compared motif-wise.
    if patterns is None and rng.random() < motif_prob:
        return VerifyCase(graph=topo, motif_k=3, name=name)

    labeled = rng.random() < labeled_prob
    num_labels = int(rng.integers(2, 4)) if labeled else None
    graph: object = topo
    if labeled:
        labels = rng.integers(0, num_labels, size=topo.num_vertices)
        graph = LabeledGraph(topo, labels)

    if patterns is not None:
        pattern = patterns[int(rng.integers(len(patterns)))]
        if pattern.is_labeled and not labeled:
            labels = rng.integers(0, 3, size=topo.num_vertices)
            graph = LabeledGraph(topo, labels)
    else:
        pattern = random_pattern(
            rng,
            max_vertices=max_pattern_vertices,
            num_labels=num_labels,
        )

    induced = bool(rng.random() < induced_prob)
    matching_order: Optional[Tuple[int, ...]] = None
    if rng.random() < random_order_prob:
        orders = enumerate_matching_orders(pattern)
        matching_order = orders[int(rng.integers(len(orders)))]
    return VerifyCase(
        graph=graph,
        pattern=pattern,
        induced=induced,
        matching_order=matching_order,
        name=name,
    )


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _case_topology(case: VerifyCase) -> CSRGraph:
    graph = case.graph
    return graph.graph if isinstance(graph, LabeledGraph) else graph


def _rebuild_case(
    case: VerifyCase,
    edges: Sequence[Tuple[int, int]],
    num_vertices: int,
    labels: Optional[np.ndarray],
) -> VerifyCase:
    topo = CSRGraph.from_edges(
        edges, num_vertices=num_vertices, name=_case_topology(case).name
    )
    graph: object = topo
    if labels is not None:
        graph = LabeledGraph(topo, labels)
    # Any stored expectation was for the unshrunk graph.
    return dc_replace(case, graph=graph, expected=None)


def _without_vertex(case: VerifyCase, victim: int) -> VerifyCase:
    topo = _case_topology(case)
    keep = [v for v in range(topo.num_vertices) if v != victim]
    remap = {v: i for i, v in enumerate(keep)}
    edges = [
        (remap[u], remap[v])
        for u, v in topo.edges()
        if u != victim and v != victim
    ]
    labels = getattr(case.graph, "labels", None)
    if labels is not None:
        labels = np.asarray(labels)[keep]
    return _rebuild_case(case, edges, len(keep), labels)


def _without_edge(case: VerifyCase, index: int) -> VerifyCase:
    topo = _case_topology(case)
    edges = list(topo.edges())
    del edges[index]
    labels = getattr(case.graph, "labels", None)
    if labels is not None:
        labels = np.asarray(labels)
    return _rebuild_case(case, edges, topo.num_vertices, labels)


def shrink_case(
    case: VerifyCase,
    *,
    backends=None,
    oracle: bool = True,
    max_checks: int = 400,
) -> VerifyCase:
    """Minimize a failing case by greedy vertex, then edge, deletion.

    Each candidate deletion is re-run through the differential runner;
    the deletion is kept iff some mismatch still reproduces.  Vertex
    deletions dominate (they remove whole adjacency lists), edge
    deletions then trim what remains.  Deterministic, monotonically
    shrinking, and bounded by ``max_checks`` differential runs.
    """
    resolved = resolve_backends(backends)

    def still_fails(candidate: VerifyCase) -> bool:
        return not run_case(
            candidate, backends=resolved, oracle=oracle
        ).ok

    if not still_fails(case):
        raise ValueError("shrink_case needs a failing case to start from")

    current = case
    checks = 1
    improved = True
    while improved and checks < max_checks:
        improved = False
        for victim in range(_case_topology(current).num_vertices):
            candidate = _without_vertex(current, victim)
            checks += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
            if checks >= max_checks:
                break
        if improved:
            continue
        for index in range(_case_topology(current).num_edges):
            candidate = _without_edge(current, index)
            checks += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
            if checks >= max_checks:
                break
    log.info(
        "shrunk %s to |V|=%d |E|=%d in %d checks",
        case.name or "case",
        _case_topology(current).num_vertices,
        _case_topology(current).num_edges,
        checks,
    )
    return current


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------
@dataclass
class FuzzFailure:
    """One failing case, before and after shrinking."""

    case: VerifyCase
    report: DifferentialReport
    shrunk: Optional[VerifyCase] = None
    shrunk_report: Optional[DifferentialReport] = None

    def reproducer(self) -> VerifyCase:
        """The smallest failing case known (shrunk when available)."""
        return self.shrunk if self.shrunk is not None else self.case

    def as_dict(self) -> Dict[str, object]:
        from .corpus import case_to_dict

        out: Dict[str, object] = {"report": self.report.as_dict()}
        if self.shrunk is not None and self.shrunk_report is not None:
            out["shrunk_report"] = self.shrunk_report.as_dict()
            out["reproducer"] = case_to_dict(
                self.shrunk,
                description="auto-shrunk by flexminer verify",
            )
        return out


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    cases_run: int
    backends: Tuple[str, ...]
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "cases_run": self.cases_run,
            "backends": list(self.backends),
            "ok": self.ok,
            "failures": [f.as_dict() for f in self.failures],
        }


def fuzz(
    *,
    seed: int = 0,
    cases: int = 50,
    backends=None,
    shrink: bool = True,
    families: Sequence[str] = GRAPH_FAMILIES,
    patterns: Optional[Sequence[Pattern]] = None,
    max_pattern_vertices: int = 4,
    oracle: bool = True,
    metrics=None,
) -> FuzzReport:
    """Run ``cases`` random differential cases; shrink any failures.

    ``backends`` accepts names or a name→callable mapping (the latter is
    how mutation tests inject a deliberately broken backend); ``None``
    runs the full matrix.  Failures are shrunk against the backends that
    actually mismatched (plus ``serial`` as the drift reference when
    selected), which keeps the shrink loop cheap.
    """
    resolved = resolve_backends(backends)
    rng = np.random.default_rng(seed)
    report = FuzzReport(
        seed=seed, cases_run=cases, backends=tuple(resolved)
    )
    for index in range(cases):
        case = random_case(
            rng,
            index=index,
            families=families,
            patterns=patterns,
            max_pattern_vertices=max_pattern_vertices,
        )
        result = run_case(
            case, backends=resolved, oracle=oracle, metrics=metrics
        )
        if result.ok:
            continue
        failure = FuzzFailure(case=case, report=result)
        if shrink:
            failing = {m.backend for m in result.mismatches}
            subset = {
                name: runner
                for name, runner in resolved.items()
                if name in failing or name == "serial"
            } or resolved
            try:
                failure.shrunk = shrink_case(
                    case, backends=subset, oracle=oracle
                )
                failure.shrunk_report = run_case(
                    failure.shrunk, backends=subset, oracle=oracle
                )
            except ValueError:  # pragma: no cover - flaky-failure guard
                log.warning("failure did not reproduce during shrink")
        report.failures.append(failure)
        log.warning(
            "fuzz case %d failed (%d mismatches)",
            index,
            len(result.mismatches),
        )
    return report
