"""Brute-force matching oracle, independent of the compiler.

Every mining backend in this repository executes a *compiled* plan, so a
compiler bug would propagate to all of them and cross-backend agreement
would prove nothing.  The oracle breaks that dependency: it counts
matches straight from the :mod:`repro.patterns` isomorphism machinery,
never touching matching orders, symmetry conditions, or set-op kernels.

Enumeration uses ESU (Wernicke's algorithm): every *connected* k-vertex
set is visited exactly once, and each set is classified with
:func:`repro.patterns.matches_on_vertex_set`.  A connected pattern's
image under any (injective) homomorphism is connected, so restricting to
connected vertex sets loses nothing while cutting the
``C(n, k)``-combinations cost of the plain brute force — the oracle
stays usable on the few-hundred-vertex graphs the fuzzer generates.
Disconnected patterns (which the compiler rejects anyway) fall back to
the all-combinations enumerator.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..patterns import Pattern, brute_force_embeddings, matches_on_vertex_set

__all__ = ["connected_vertex_sets", "oracle_count", "oracle_embeddings"]


def connected_vertex_sets(graph, k: int) -> Iterator[Tuple[int, ...]]:
    """Yield every connected k-vertex subset of ``graph`` exactly once.

    ESU (Wernicke 2006): grow each subset from its minimum vertex
    ``root``, extending only with vertices ``> root`` drawn from the
    exclusive neighborhood of the newest member.  The enumeration order
    is deterministic; each subset is yielded as a sorted tuple.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        for v in graph.vertices():
            yield (v,)
        return
    for root in graph.vertices():
        ext = [int(u) for u in graph.neighbors(root) if int(u) > root]
        if ext:
            nbh = {root, *ext}
            yield from _esu_extend(graph, [root], ext, nbh, root, k)


def _esu_extend(
    graph,
    sub: List[int],
    ext: List[int],
    nbh: set,
    root: int,
    k: int,
) -> Iterator[Tuple[int, ...]]:
    """Recursive ESU step.

    ``nbh`` is the invariant ``sub ∪ N(sub)`` restricted to vertices
    ``> root`` (plus ``root`` itself): a vertex already in ``nbh`` was
    reachable at an earlier branch, so re-adding it would duplicate the
    subset.
    """
    if len(sub) + 1 == k:
        for w in ext:
            yield tuple(sorted(sub + [w]))
        return
    ext = list(ext)
    while ext:
        w = ext.pop()
        excl = [
            int(u)
            for u in graph.neighbors(w)
            if int(u) > root and int(u) not in nbh
        ]
        yield from _esu_extend(
            graph, sub + [w], ext + excl, nbh | {w, *excl}, root, k
        )


def oracle_embeddings(
    graph, pattern: Pattern, *, induced: bool = False
) -> List[Tuple[int, ...]]:
    """All distinct matches, one canonical representative per class.

    Same match semantics as
    :func:`repro.patterns.brute_force_embeddings` (completeness +
    uniqueness under the pattern's automorphism group, §II-A), same
    return format.  ``graph`` may be a CSRGraph or a LabeledGraph.
    """
    if not pattern.is_connected():
        # No connected-set shortcut applies; defer to the plain
        # enumerator (compiler-independent too, just slower).
        return brute_force_embeddings(graph, pattern, induced=induced)
    automorphisms = pattern.automorphisms()
    matches: List[Tuple[int, ...]] = []
    for combo in connected_vertex_sets(graph, pattern.num_vertices):
        matches.extend(
            matches_on_vertex_set(
                graph,
                pattern,
                combo,
                induced=induced,
                automorphisms=automorphisms,
            )
        )
    return sorted(matches)


def oracle_count(graph, pattern: Pattern, *, induced: bool = False) -> int:
    """Number of distinct matches (see :func:`oracle_embeddings`)."""
    return len(oracle_embeddings(graph, pattern, induced=induced))
