"""Regression corpus: serialized differential cases, replayed in CI.

Every shrunken fuzz failure (and every interesting negative result) can
be frozen as a small JSON file and replayed forever.  The schema is
self-contained — graph edges, labels, pattern, semantics, and the
expected per-pattern counts — so a corpus case pins down three things
at once: the oracle (checked against ``expected``), every backend
(checked against the oracle), and the zero-drift counter invariant.

Promotion workflow (see ``docs/verification.md``): take the
``reproducer`` block from a failing ``flexminer verify`` report, fix the
bug, fill in ``expected`` with the now-agreed counts, and drop the file
into ``tests/corpus/``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph import CSRGraph, LabeledGraph
from ..patterns import Pattern
from .differential import DifferentialReport, VerifyCase, run_case

__all__ = [
    "CASE_SCHEMA",
    "case_from_dict",
    "case_to_dict",
    "load_case",
    "load_corpus",
    "replay_corpus",
    "save_case",
]

#: Corpus-case schema identifier; bump the suffix on breaking changes.
CASE_SCHEMA = "flexminer.verifycase/1"


def case_to_dict(
    case: VerifyCase, *, description: str = ""
) -> Dict[str, object]:
    """Serialize a case to a JSON-able dict (see :data:`CASE_SCHEMA`)."""
    graph = case.graph
    topo = graph.graph if isinstance(graph, LabeledGraph) else graph
    labels = getattr(graph, "labels", None)
    payload: Dict[str, object] = {
        "schema": CASE_SCHEMA,
        "name": case.name,
        "description": description,
        "graph": {
            "num_vertices": topo.num_vertices,
            "edges": [[int(u), int(v)] for u, v in topo.edges()],
            "labels": (
                [int(x) for x in labels] if labels is not None else None
            ),
        },
        "induced": case.induced,
        "matching_order": (
            list(case.matching_order)
            if case.matching_order is not None
            else None
        ),
        "expected": (
            list(case.expected) if case.expected is not None else None
        ),
        "check_oracle": case.check_oracle,
    }
    if case.motif_k is not None:
        payload["motif_k"] = case.motif_k
        payload["pattern"] = None
    else:
        pattern = case.pattern
        payload["motif_k"] = None
        payload["pattern"] = {
            "num_vertices": pattern.num_vertices,
            "edges": [[int(u), int(v)] for u, v in pattern.edges],
            "labels": (
                [lab for lab in pattern.labels]
                if pattern.is_labeled
                else None
            ),
            "name": pattern.name,
        }
    return payload


def case_from_dict(payload: Dict[str, object]) -> VerifyCase:
    """Rebuild a :class:`VerifyCase` from :func:`case_to_dict` output."""
    schema = payload.get("schema")
    if schema != CASE_SCHEMA:
        raise ValueError(
            f"unsupported corpus schema {schema!r} (want {CASE_SCHEMA})"
        )
    gspec = payload["graph"]
    topo = CSRGraph.from_edges(
        [(int(u), int(v)) for u, v in gspec["edges"]],
        num_vertices=int(gspec["num_vertices"]),
        name=str(payload.get("name", "")),
    )
    graph: object = topo
    if gspec.get("labels") is not None:
        graph = LabeledGraph(
            topo, np.asarray(gspec["labels"], dtype=np.int32)
        )
    pattern: Optional[Pattern] = None
    if payload.get("pattern") is not None:
        pspec = payload["pattern"]
        pattern = Pattern(
            int(pspec["num_vertices"]),
            [(int(u), int(v)) for u, v in pspec["edges"]],
            name=str(pspec.get("name", "")),
            labels=pspec.get("labels"),
        )
    order = payload.get("matching_order")
    expected = payload.get("expected")
    return VerifyCase(
        graph=graph,
        pattern=pattern,
        motif_k=payload.get("motif_k"),
        induced=bool(payload.get("induced", False)),
        matching_order=tuple(order) if order is not None else None,
        name=str(payload.get("name", "")),
        expected=tuple(expected) if expected is not None else None,
        check_oracle=bool(payload.get("check_oracle", True)),
    )


def save_case(
    path: str, case: VerifyCase, *, description: str = ""
) -> str:
    """Write one corpus case as pretty-printed JSON."""
    with open(path, "w") as f:
        json.dump(
            case_to_dict(case, description=description),
            f,
            indent=2,
            sort_keys=True,
        )
        f.write("\n")
    return path


def load_case(path: str) -> VerifyCase:
    with open(path) as f:
        return case_from_dict(json.load(f))


def load_corpus(directory: str) -> List[Tuple[str, VerifyCase]]:
    """Load every ``*.json`` case in a directory, sorted by filename."""
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"corpus directory {directory!r} not found")
    out: List[Tuple[str, VerifyCase]] = []
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".json"):
            path = os.path.join(directory, entry)
            out.append((path, load_case(path)))
    return out


def replay_corpus(
    directory: str,
    *,
    backends=None,
    oracle: bool = True,
    metrics=None,
) -> List[Tuple[str, DifferentialReport]]:
    """Run every corpus case through the differential runner."""
    return [
        (path, run_case(case, backends=backends, oracle=oracle, metrics=metrics))
        for path, case in load_corpus(directory)
    ]
