"""Differential runner: one case, every backend, structured mismatches.

The repository produces a pattern count seven independent ways — serial
:class:`~repro.engine.explore.PatternAwareEngine` (count-only leaves on
or off, probe kernels forced on, and the level-synchronous
``batch_frontier`` mode), the frozen pre-kernel
:class:`~repro.bench.enginebench.LegacyEngine`, the multi-process
:class:`~repro.engine.parallel.ParallelMiner`, the persistent
:class:`~repro.engine.pool.MinerPool` (each plan mined twice through
one resident pool, so resident-worker state is exercised), the
resident :class:`~repro.serve.MiningService` (two served requests, the
second answered through the plan cache — and, for ``serve-cached``,
the result cache — must both be bit-identical), and the
cycle-level FlexMiner simulator — the latter in three timing flavors:
legacy per-element loops, vectorized kernels, and the trace/replay
parallel runner at several worker counts.  The differential runner executes a
(graph, pattern) case through all of them, compares every per-pattern
count against the compiler-independent :mod:`~repro.verify.oracle`, and
checks two drift invariants: the **zero-drift op-counter invariant**
(with chunking off, each engine-side backend must report
*bit-identical* :class:`~repro.engine.counters.OpCounters`) and the
**bit-identical SimReport invariant** (every simulator flavor must
produce the exact same cycles, per-PE stats and cache/NoC/DRAM
counters as the legacy-kernel reference).

Mismatches come back as structured :class:`Mismatch` records and are
exported through :mod:`repro.obs` (``make_report("verify", ...)``
envelopes, a ``repro.verify`` log channel, and ``verify.*`` gauges), so
CI can archive exactly what disagreed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..analysis import check_multi_plan, check_plan
from ..compiler import MultiPlan, compile_motifs, compile_pattern
from ..obs import NULL_REGISTRY, get_logger, make_report
from ..patterns import Pattern
from .oracle import oracle_count

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKENDS",
    "SIM_DRIFT_BACKENDS",
    "ZERO_DRIFT_BACKENDS",
    "DifferentialReport",
    "Mismatch",
    "VerifyCase",
    "mismatch_report",
    "resolve_backends",
    "run_case",
]

log = get_logger("verify")

#: A backend executes a compiled plan over a case's graph and returns
#: ``(counts, counters)``; ``counters`` is None when the backend has no
#: OpCounters accounting (the hardware simulator).
Backend = Callable[["VerifyCase", object], Tuple[Tuple[int, ...], object]]


@dataclass(frozen=True)
class VerifyCase:
    """One differential test case.

    Either a single ``pattern`` (edge-induced by default, vertex-induced
    with ``induced=True``) or — when ``motif_k`` is set — the full
    k-motif :class:`~repro.compiler.plan.MultiPlan`, whose per-pattern
    breakdown is compared motif by motif.
    """

    graph: object  #: CSRGraph or LabeledGraph
    pattern: Optional[Pattern] = None
    motif_k: Optional[int] = None
    induced: bool = False
    matching_order: Optional[Tuple[int, ...]] = None
    name: str = ""
    #: Known-good per-pattern counts (regression-corpus cases).  When
    #: set, the oracle itself is checked against it.
    expected: Optional[Tuple[int, ...]] = None
    #: Corpus cases too large for the exponential oracle set this False
    #: and rely on ``expected`` (pinned from an oracle run at promotion
    #: time) as the ground truth instead.
    check_oracle: bool = True

    def __post_init__(self) -> None:
        if (self.pattern is None) == (self.motif_k is None):
            raise ValueError("exactly one of pattern/motif_k required")

    def compile(self):
        if self.motif_k is not None:
            return compile_motifs(self.motif_k)
        return compile_pattern(
            self.pattern,
            induced=self.induced,
            matching_order=self.matching_order,
        )

    def oracle_counts(self) -> Tuple[int, ...]:
        if self.motif_k is not None:
            from ..patterns import enumerate_motifs

            return tuple(
                oracle_count(self.graph, m, induced=True)
                for m in enumerate_motifs(self.motif_k)
            )
        return (
            oracle_count(self.graph, self.pattern, induced=self.induced),
        )

    def describe(self) -> str:
        g = self.graph
        what = (
            f"{self.motif_k}-motifs"
            if self.motif_k is not None
            else (self.pattern.name or repr(self.pattern))
        )
        sem = "induced" if self.induced else "edge-induced"
        labeled = ", labeled" if getattr(g, "labels", None) is not None else ""
        tag = f"{self.name}: " if self.name else ""
        return (
            f"{tag}{what} ({sem}) on |V|={g.num_vertices} "
            f"|E|={g.num_edges}{labeled}"
        )


@dataclass(frozen=True)
class Mismatch:
    """One disagreement surfaced by the differential runner."""

    case: str
    backend: str
    #: "count" | "counter-drift" | "sim-report-drift" | "oracle-expected"
    #: | "error" | "static-dynamic"
    kind: str
    expected: object = None
    actual: object = None
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "case": self.case,
            "backend": self.backend,
            "kind": self.kind,
            "expected": self.expected,
            "actual": self.actual,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        return (
            f"[{self.kind}] {self.backend} on {self.case}: "
            f"expected {self.expected}, got {self.actual}"
            + (f" ({self.detail})" if self.detail else "")
        )


@dataclass
class DifferentialReport:
    """Every backend's answer for one case, plus the disagreements."""

    case: VerifyCase
    truth: Optional[Tuple[int, ...]]
    counts: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    mismatches: List[Mismatch] = field(default_factory=list)
    #: FM1xx error codes the static plan verifier raised (normally
    #: empty: the fuzzer only emits compiler-valid plans).
    static_codes: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def as_dict(self) -> Dict[str, object]:
        return {
            "case": self.case.describe(),
            "truth": list(self.truth) if self.truth is not None else None,
            "counts": {k: list(v) for k, v in sorted(self.counts.items())},
            "ok": self.ok,
            "mismatches": [m.as_dict() for m in self.mismatches],
            "static_codes": list(self.static_codes),
        }


# ----------------------------------------------------------------------
# Backend matrix
# ----------------------------------------------------------------------
def _serial(case: VerifyCase, plan):
    from ..engine import PatternAwareEngine

    result = PatternAwareEngine(case.graph, plan).run()
    return result.counts, result.counters


def _materialize(case: VerifyCase, plan):
    """Every leaf candidate list materialized (count-only path off)."""
    from ..engine import PatternAwareEngine

    result = PatternAwareEngine(case.graph, plan, count_leaves=False).run()
    return result.counts, result.counters


def _kernel_probe(case: VerifyCase, plan):
    """Count-only probe kernels forced below the size threshold."""
    from ..engine import PatternAwareEngine

    engine = PatternAwareEngine(case.graph, plan)
    engine.leaf_count_min_work = 0
    result = engine.run()
    return result.counts, result.counters


def _legacy(case: VerifyCase, plan):
    """The frozen pre-kernel engine the benches use as a denominator."""
    from ..bench.enginebench import LegacyEngine

    result = LegacyEngine(case.graph, plan).run()
    return result.counts, result.counters


def _no_memo(case: VerifyCase, plan):
    """Frontier memoization disabled (different op chain, same counts)."""
    from ..engine import PatternAwareEngine

    result = PatternAwareEngine(case.graph, plan, use_frontier_memo=False).run()
    return result.counts, result.counters


def _frontier_batch(case: VerifyCase, plan):
    """Level-synchronous frontier expansion (``batch_frontier=True``).

    The vectorized engine charges OpCounters in closed form per batch,
    so both counts and counters must stay bit-identical to ``serial``.
    """
    from ..engine import PatternAwareEngine

    result = PatternAwareEngine(case.graph, plan, batch_frontier=True).run()
    return result.counts, result.counters


def _parallel(workers: int) -> Backend:
    def run(case: VerifyCase, plan):
        from ..engine import ParallelMiner

        result = ParallelMiner(case.graph, plan, workers=workers).mine()
        return result.counts, result.counters

    return run


def _pool(workers: int, *, batch_frontier: bool = False) -> Backend:
    """The persistent pool, exercised as a request *stream*.

    Mines the same plan twice through one resident pool and insists the
    repeat answer is bit-identical to the first (a stale per-request
    reset inside a resident worker would show up only on the second
    request) before the usual oracle/zero-drift comparisons.  With
    ``batch_frontier=True`` the resident workers run the
    level-synchronous frontier mode instead of the recursive path.
    """

    def run(case: VerifyCase, plan):
        from ..engine import MinerPool

        with MinerPool(
            case.graph, workers=workers, batch_frontier=batch_frontier
        ) as pool:
            first = pool.mine(plan)
            second = pool.mine(plan)
        if (
            first.counts != second.counts
            or first.counters.as_dict() != second.counters.as_dict()
        ):
            raise AssertionError(
                "pool request stream drifted between identical requests: "
                f"{first.counts} then {second.counts}"
            )
        return second.counts, second.counters

    return run


def _serve(workers: int, *, cached: bool) -> Backend:
    """The serving layer, exercised as a two-request stream.

    Registers the case graph in a fresh :class:`MiningService` and
    issues the same request twice.  The second request must come back
    through the plan cache (and, with ``cached=True``, the result
    cache) bit-identical to the first — the zero-drift guarantee of
    ``docs/serving.md``, including the memoized path the direct engine
    never takes.
    """

    def run(case: VerifyCase, plan):
        from ..serve import MineRequest, MiningService

        request = MineRequest(
            graph="case",
            pattern=case.pattern,
            motif_k=case.motif_k,
            induced=case.induced,
            matching_order=case.matching_order,
        )
        with MiningService(workers=workers, result_cache=cached) as svc:
            svc.register_graph("case", case.graph)
            first = svc.request(request)
            second = svc.request(request)
        if not second.plan_cache_hit:
            raise AssertionError(
                "second identical request recompiled its plan"
            )
        if cached and not second.result_cache_hit:
            raise AssertionError(
                "second identical request missed the result cache"
            )
        if (
            first.counts != second.counts
            or first.counters.as_dict() != second.counters.as_dict()
        ):
            raise AssertionError(
                "served request stream drifted between identical "
                f"requests: {first.counts} then {second.counts}"
            )
        return second.counts, second.counters

    return run


class _SimReportCounters:
    """Adapter exposing a full :class:`~repro.hw.report.SimReport` dict
    through the backend counter protocol, so the sim-family drift check
    can assert *bit-identical reports* (cycles, per-PE stats, cache/NoC/
    DRAM counters) and not just match counts."""

    def __init__(self, report) -> None:
        self._payload = report.as_dict()

    def as_dict(self) -> Dict[str, object]:
        return dict(self._payload)


def _sim(case: VerifyCase, plan):
    """The legacy-kernel serial simulator: the timing reference."""
    from ..hw import FlexMinerConfig, simulate

    config = FlexMinerConfig.small(timing_kernels=False)
    report = simulate(case.graph, plan, config)
    return tuple(report.counts), _SimReportCounters(report)


def _sim_fast(case: VerifyCase, plan):
    """Vectorized timing kernels (the default simulator path)."""
    from ..hw import FlexMinerConfig, simulate

    config = FlexMinerConfig.small(timing_kernels=True)
    report = simulate(case.graph, plan, config)
    return tuple(report.counts), _SimReportCounters(report)


def _sim_parallel(workers: int) -> Backend:
    def run(case: VerifyCase, plan):
        from ..hw import FlexMinerConfig
        from ..hw.parallel_sim import simulate_parallel

        config = FlexMinerConfig.small(timing_kernels=True)
        report = simulate_parallel(
            case.graph, plan, config, workers=workers
        )
        return tuple(report.counts), _SimReportCounters(report)

    return run


#: The full backend matrix, in reporting order.
BACKENDS: Dict[str, Backend] = {
    "serial": _serial,
    "materialize": _materialize,
    "kernel-probe": _kernel_probe,
    "legacy": _legacy,
    "no-memo": _no_memo,
    "frontier-batch": _frontier_batch,
    "parallel-1": _parallel(1),
    "parallel-2": _parallel(2),
    "parallel-4": _parallel(4),
    "pool-2": _pool(2),
    "pool-4": _pool(4),
    "pool-2-batch": _pool(2, batch_frontier=True),
    "serve-pool-2": _serve(2, cached=False),
    "serve-cached": _serve(1, cached=True),
    "sim": _sim,
    "sim-fast": _sim_fast,
    "sim-parallel-1": _sim_parallel(1),
    "sim-parallel-2": _sim_parallel(2),
    "sim-parallel-4": _sim_parallel(4),
}

DEFAULT_BACKENDS: Tuple[str, ...] = tuple(BACKENDS)

#: Backends whose OpCounters must be bit-identical to ``serial``'s.
#: ``no-memo`` recomputes frontier lists (different op chain by design)
#: so it is excluded; the simulator backends have their own drift set.
ZERO_DRIFT_BACKENDS: Tuple[str, ...] = (
    "serial",
    "materialize",
    "kernel-probe",
    "legacy",
    "frontier-batch",
    "parallel-1",
    "parallel-2",
    "parallel-4",
    "pool-2",
    "pool-4",
    "pool-2-batch",
    "serve-pool-2",
    "serve-cached",
)

#: Simulator backends whose *entire SimReport* must be bit-identical to
#: ``sim``'s (the legacy-kernel reference): the vectorized kernels and
#: the trace/replay parallel runner both claim exact timing parity.
SIM_DRIFT_BACKENDS: Tuple[str, ...] = (
    "sim",
    "sim-fast",
    "sim-parallel-1",
    "sim-parallel-2",
    "sim-parallel-4",
)


def resolve_backends(
    backends: Union[None, Sequence[str], Mapping[str, Backend]],
) -> Dict[str, Backend]:
    """Normalize a backend selection to an ordered name→callable map.

    Accepts ``None`` (full matrix), a sequence of names, or a mapping —
    the mapping form is how tests inject deliberately broken backends
    for mutation testing.
    """
    if backends is None:
        return dict(BACKENDS)
    if isinstance(backends, Mapping):
        return dict(backends)
    unknown = [name for name in backends if name not in BACKENDS]
    if unknown:
        raise ValueError(
            f"unknown backend(s) {unknown}; known: {', '.join(BACKENDS)}"
        )
    return {name: BACKENDS[name] for name in backends}


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
def run_case(
    case: VerifyCase,
    *,
    backends: Union[None, Sequence[str], Mapping[str, Backend]] = None,
    oracle: bool = True,
    metrics=None,
) -> DifferentialReport:
    """Execute one case through every backend and diff the answers.

    Ground truth is ``case.expected`` when present (and the oracle is
    then *also* checked against it), else the oracle count, else —
    with ``oracle=False`` — the serial engine's answer (pure
    cross-backend mode for large inputs).
    """
    metrics = metrics if metrics is not None else NULL_REGISTRY
    resolved = resolve_backends(backends)
    name = case.describe()
    report = DifferentialReport(case=case, truth=None)

    try:
        plan = case.compile()
    except Exception as exc:  # pragma: no cover - generator bug guard
        report.mismatches.append(
            Mismatch(name, "compile", "error", actual=repr(exc))
        )
        return report

    # Static verdict first: a statically rejected plan MUST also fail
    # dynamically (checked below) — the converse direction (dynamic
    # failure with a static pass) is legitimate, the oracle sees bug
    # classes the algebra cannot.
    static = (
        check_multi_plan(plan)
        if isinstance(plan, MultiPlan)
        else check_plan(plan)
    )
    report.static_codes = tuple(d.code for d in static.errors)

    counters: Dict[str, Dict[str, int]] = {}
    for backend_name, runner in resolved.items():
        try:
            counts, ctrs = runner(case, plan)
        except Exception as exc:
            report.mismatches.append(
                Mismatch(name, backend_name, "error", actual=repr(exc))
            )
            continue
        report.counts[backend_name] = tuple(int(c) for c in counts)
        if ctrs is not None:
            counters[backend_name] = ctrs.as_dict()

    # -- ground truth ---------------------------------------------------
    truth: Optional[Tuple[int, ...]] = None
    if oracle and case.check_oracle:
        oracle_counts = case.oracle_counts()
        truth = oracle_counts
        if case.expected is not None and oracle_counts != case.expected:
            report.mismatches.append(
                Mismatch(
                    name,
                    "oracle",
                    "oracle-expected",
                    expected=list(case.expected),
                    actual=list(oracle_counts),
                    detail="oracle disagrees with the corpus expectation",
                )
            )
    elif case.expected is not None:
        truth = case.expected
    elif "serial" in report.counts:
        truth = report.counts["serial"]
    report.truth = truth

    # -- count agreement ------------------------------------------------
    if truth is not None:
        for backend_name, counts in report.counts.items():
            if counts != truth:
                report.mismatches.append(
                    Mismatch(
                        name,
                        backend_name,
                        "count",
                        expected=list(truth),
                        actual=list(counts),
                    )
                )

    # -- static ⇒ dynamic cross-check -----------------------------------
    # ``static-pass ⇒ oracle-pass`` is the differential invariant: when
    # the static verifier rejects the plan but every backend matched the
    # ground truth, one of the two layers is lying — surface it.
    if report.static_codes and truth is not None:
        dynamic_failure = any(
            m.kind in ("count", "error", "oracle-expected")
            for m in report.mismatches
        )
        if not dynamic_failure:
            report.mismatches.append(
                Mismatch(
                    name,
                    "plancheck",
                    "static-dynamic",
                    expected="a dynamic count mismatch",
                    actual=list(report.static_codes),
                    detail="static verifier rejected a plan every "
                    "backend executed correctly",
                )
            )

    # -- zero-drift op-counter invariant --------------------------------
    drift_ref_name = next(
        (b for b in ZERO_DRIFT_BACKENDS if b in counters), None
    )
    if drift_ref_name is not None:
        ref = counters[drift_ref_name]
        for backend_name in ZERO_DRIFT_BACKENDS:
            got = counters.get(backend_name)
            if got is None or got == ref:
                continue
            diff_keys = sorted(
                k for k in ref if ref[k] != got.get(k)
            )
            report.mismatches.append(
                Mismatch(
                    name,
                    backend_name,
                    "counter-drift",
                    expected={k: ref[k] for k in diff_keys},
                    actual={k: got.get(k) for k in diff_keys},
                    detail=f"drift vs {drift_ref_name} on {diff_keys}",
                )
            )

    # -- bit-identical SimReport invariant ------------------------------
    sim_ref_name = next(
        (b for b in SIM_DRIFT_BACKENDS if b in counters), None
    )
    if sim_ref_name is not None:
        ref = counters[sim_ref_name]
        for backend_name in SIM_DRIFT_BACKENDS:
            got = counters.get(backend_name)
            if got is None or got == ref:
                continue
            diff_keys = sorted(
                k for k in ref if ref[k] != got.get(k)
            )
            report.mismatches.append(
                Mismatch(
                    name,
                    backend_name,
                    "sim-report-drift",
                    expected={k: ref[k] for k in diff_keys},
                    actual={k: got.get(k) for k in diff_keys},
                    detail=f"drift vs {sim_ref_name} on {diff_keys}",
                )
            )

    metrics.counter("verify.cases").inc()
    if not report.ok:
        metrics.counter("verify.mismatched_cases").inc()
        metrics.counter("verify.mismatches").inc(len(report.mismatches))
        for mismatch in report.mismatches:
            log.warning("mismatch: %s", mismatch)
    else:
        log.debug("ok: %s -> %s", name, truth)
    return report


def mismatch_report(
    reports: Sequence[DifferentialReport],
    *,
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Wrap differential results in the ``flexminer.run/1`` envelope.

    The payload keeps only failing cases in full (plus aggregate
    totals), which is what the CI artifact archives on failure.
    """
    failures = [r for r in reports if not r.ok]
    data = {
        "cases": len(reports),
        "failed_cases": len(failures),
        "ok": not failures,
        "failures": [r.as_dict() for r in failures],
    }
    return make_report("verify", data, meta=meta)
