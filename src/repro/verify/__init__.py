"""Differential verification: oracle, backend matrix, fuzzer, corpus.

The correctness contract of this repository is *cross-implementation
count agreement*: the serial engine, its count-only and legacy kernel
variants, the multi-process miner, and the cycle-level simulator must
all agree — with each other, and with a brute-force oracle that never
touches the compiler.  This package makes that contract continuously
enforceable:

* :mod:`~repro.verify.oracle` — ESU-based enumeration oracle built
  straight on :mod:`repro.patterns`;
* :mod:`~repro.verify.differential` — one case through every backend,
  count and zero-drift op-counter comparison, structured mismatches;
* :mod:`~repro.verify.fuzz` — seeded random case generation plus greedy
  shrinking of failures to small reproducers;
* :mod:`~repro.verify.corpus` — JSON-frozen shrunken cases replayed by
  the test suite and CI.

CLI entry point: ``flexminer verify --seed 0 --cases 50``.
"""

from .corpus import (
    CASE_SCHEMA,
    case_from_dict,
    case_to_dict,
    load_case,
    load_corpus,
    replay_corpus,
    save_case,
)
from .differential import (
    BACKENDS,
    DEFAULT_BACKENDS,
    DifferentialReport,
    Mismatch,
    VerifyCase,
    mismatch_report,
    resolve_backends,
    run_case,
)
from .fuzz import (
    GRAPH_FAMILIES,
    FuzzFailure,
    FuzzReport,
    fuzz,
    random_case,
    random_graph,
    random_pattern,
    shrink_case,
)
from .oracle import connected_vertex_sets, oracle_count, oracle_embeddings

__all__ = [
    "CASE_SCHEMA",
    "case_from_dict",
    "case_to_dict",
    "load_case",
    "load_corpus",
    "replay_corpus",
    "save_case",
    "BACKENDS",
    "DEFAULT_BACKENDS",
    "DifferentialReport",
    "Mismatch",
    "VerifyCase",
    "mismatch_report",
    "resolve_backends",
    "run_case",
    "GRAPH_FAMILIES",
    "FuzzFailure",
    "FuzzReport",
    "fuzz",
    "random_case",
    "random_graph",
    "random_pattern",
    "shrink_case",
    "connected_vertex_sets",
    "oracle_count",
    "oracle_embeddings",
]
