"""FlexMiner reproduction: a pattern-aware graph-pattern-mining system.

From-scratch Python reproduction of *FlexMiner: A Pattern-Aware
Accelerator for Graph Pattern Mining* (Chen, Huang, Xu, Bourgeat, Chung --
ISCA 2021): the pattern compiler, the software GPM engines it is compared
against, and a cycle-level simulator of the accelerator.

Public surface::

    repro.graph     CSR graphs, generators, datasets, orientation
    repro.patterns  pattern library, isomorphism, motifs
    repro.compiler  matching/symmetry orders, execution plans, IR
    repro.engine    pattern-aware / c-map / oblivious software engines
    repro.hw        FlexMiner cycle-level simulator
    repro.apps      TC, k-CL, SL, k-MC over any backend
    repro.bench     CPU models and the paper's tables/figures
    repro.obs       tracing, metrics, run reports, debug logging
    repro.verify    oracle, differential backend matrix, fuzzer, corpus
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
