"""Command-line interface.

Examples::

    flexminer compile 4-cycle                 # print the execution-plan IR
    flexminer mine triangle --dataset Mi      # software mining
    flexminer mine 4-clique --dataset As --workers 4   # multi-process
    flexminer mine 4-clique --dataset As --workers 4 --pool --split-degree auto
    flexminer sim diamond --dataset As --pes 20 --cmap-kb 8
    flexminer sim triangle --dataset Mi --trace t.json --emit-json
    flexminer profile mine 4-clique --dataset As --workers 4
    flexminer stats old.json new.json         # diff two run reports
    flexminer bench-trend --record telemetry/BENCH_summary.json
    flexminer motifs 3 --dataset As
    flexminer datasets                        # Table I for the suite
    flexminer verify --seed 0 --cases 50      # differential fuzz, all backends
    flexminer verify --corpus tests/corpus --cases 25 --report verify.json
    flexminer check-plan 4-cycle plan.ir      # static plan verification
    flexminer check-plan --corpus tests/corpus --json
    flexminer lint src/repro --json           # determinism lint (FM2xx)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import __version__
from .bench import cpu_time_seconds, render_table1
from .compiler import compile_motifs, compile_pattern, emit_ir, emit_multi_ir
from .engine import MinerPool, ParallelMiner, PatternAwareEngine, mine_multi
from .graph import CSRGraph, load_dataset, load_graph
from .hw import FlexMinerConfig, simulate
from .obs import (
    NULL_TRACER,
    PhaseProfiler,
    Tracer,
    diff_reports,
    load_report,
    make_report,
    render_diff,
    render_report,
)
from .obs.trend import (
    DEFAULT_HISTORY,
    DEFAULT_THRESHOLD_PCT,
    DEFAULT_WINDOW,
)
from .patterns import from_name

__all__ = ["main", "build_parser"]


def _split_degree_arg(value: str):
    """``--split-degree`` accepts an integer or the literal ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flexminer",
        description="FlexMiner (ISCA 2021) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser(
        "compile", help="print the execution-plan IR for a pattern"
    )
    compile_p.add_argument("pattern", help="pattern name, e.g. 4-cycle")
    compile_p.add_argument(
        "--induced", action="store_true", help="vertex-induced semantics"
    )

    for name, help_text in (
        ("mine", "mine with the software engine"),
        ("sim", "simulate the FlexMiner accelerator"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("pattern")
        p.add_argument("--dataset", default="As", help="suite name (Table I)")
        p.add_argument("--graph", help="edge-list/.mtx file instead")
        p.add_argument("--induced", action="store_true")
        p.add_argument(
            "--trace", metavar="FILE",
            help="write a Chrome trace-event JSON (Perfetto-compatible)",
        )
        p.add_argument(
            "--emit-json", action="store_true",
            help="print a machine-readable run report instead of text",
        )
        if name == "sim":
            p.add_argument("--pes", type=int, default=64)
            p.add_argument("--cmap-kb", type=int, default=8)
            p.add_argument(
                "--workers", type=int, default=1,
                help="trace-phase worker processes; the report is "
                "bit-identical to the serial simulator (--trace forces "
                "a serial run)",
            )
        if name == "mine":
            p.add_argument(
                "--workers", type=int, default=1,
                help="mining worker processes (shared-memory graph)",
            )
            p.add_argument(
                "--pool", action="store_true",
                help="serve the mine from a persistent MinerPool "
                "(forked once, calibrated dispatch overhead recorded "
                "in the report)",
            )
            p.add_argument(
                "--split-degree", type=_split_degree_arg, default=None,
                metavar="N|auto",
                help="chunk roots above this degree into depth-1 slices "
                "(wall-clock option; merged op counters are inflated); "
                "'auto' asks the cost model, requires --pool",
            )
            p.add_argument(
                "--batch-frontier", action="store_true",
                help="level-synchronous frontier expansion: extend one "
                "whole level at a time with segmented kernels "
                "(bit-identical counts and op counters; falls back to "
                "recursion past the frontier memory budget)",
            )

    motifs_p = sub.add_parser("motifs", help="k-motif counting")
    motifs_p.add_argument("k", type=int)
    motifs_p.add_argument("--dataset", default="As")
    motifs_p.add_argument("--graph")

    sub.add_parser("datasets", help="print Table I for the suite")

    stats_p = sub.add_parser(
        "stats", help="pretty-print one run report or diff two"
    )
    stats_p.add_argument("report", help="run-report JSON file")
    stats_p.add_argument(
        "baseline_or_new", nargs="?", default=None, metavar="other",
        help="second report: diffs REPORT -> OTHER",
    )
    stats_p.add_argument(
        "--all", action="store_true",
        help="when diffing, show unchanged keys too",
    )

    validate_p = sub.add_parser(
        "validate", help="empirically validate an IR plan file"
    )
    validate_p.add_argument("ir_file", help="path to an IR text file")
    validate_p.add_argument("--trials", type=int, default=20)

    verify_p = sub.add_parser(
        "verify",
        help="differential verification: fuzz every backend against "
        "the brute-force oracle",
    )
    verify_p.add_argument(
        "--seed", type=int, default=0, help="fuzzer RNG seed"
    )
    verify_p.add_argument(
        "--cases", type=int, default=50, help="random cases to generate"
    )
    verify_p.add_argument(
        "--backends", default=None,
        help="comma-separated backend subset (default: full matrix; "
        "see repro.verify.BACKENDS)",
    )
    verify_p.add_argument(
        "--shrink", dest="shrink", action="store_true", default=True,
        help="minimize failing cases to small reproducers (default)",
    )
    verify_p.add_argument(
        "--no-shrink", dest="shrink", action="store_false",
        help="report failures without minimizing them",
    )
    verify_p.add_argument(
        "--corpus", metavar="DIR",
        help="also replay a regression-corpus directory of case JSONs",
    )
    verify_p.add_argument(
        "--report", metavar="FILE",
        help="write a machine-readable mismatch report (flexminer.run/1)",
    )
    verify_p.add_argument(
        "--max-pattern", type=int, default=4,
        help="largest random pattern size the fuzzer draws",
    )

    check_p = sub.add_parser(
        "check-plan",
        help="statically verify execution plans (FM1xx diagnostics)",
    )
    check_p.add_argument(
        "targets", nargs="*",
        help="pattern names and/or IR plan files",
    )
    check_p.add_argument(
        "--induced", action="store_true",
        help="compile named patterns with vertex-induced semantics",
    )
    check_p.add_argument(
        "--corpus", metavar="DIR",
        help="also check the compiled plan of every corpus case",
    )
    check_p.add_argument(
        "--json", action="store_true",
        help="emit a flexminer.run/1 JSON report instead of text",
    )
    check_p.add_argument("--pes", type=int, default=64)
    check_p.add_argument(
        "--cmap-kb", type=int, default=8,
        help="c-map size the capacity checks assume",
    )
    check_p.add_argument(
        "--batch-frontier", action="store_true",
        help="prove batch-frontier legality as if the plan were run "
        "with batch_frontier=True (FM170/FM171/FM175 opt-ins)",
    )
    check_p.add_argument(
        "--frontier-row-limit", type=int, default=None, metavar="ROWS",
        help="frontier row budget the FM173/FM174 obligations assume "
        "(default: the engine's built-in limit)",
    )

    lint_p = sub.add_parser(
        "lint",
        help="determinism lint over python sources (FM2xx diagnostics)",
    )
    lint_p.add_argument(
        "paths", nargs="*",
        help="files or directories (default: the repro package)",
    )
    lint_p.add_argument(
        "--json", action="store_true",
        help="shorthand for --format json",
    )
    lint_p.add_argument(
        "--format", choices=("text", "json", "sarif"), default=None,
        help="output format: human text (default), flexminer.run/1 "
        "JSON, or SARIF 2.1.0 for code-scanning upload",
    )
    lint_p.add_argument(
        "--baseline", metavar="FILE",
        help="subtract the findings recorded in FILE; stale entries "
        "(suppressions that no longer match) fail the gate as FM299",
    )
    lint_p.add_argument(
        "--update-baseline", metavar="FILE",
        help="write the current findings to FILE and exit 0",
    )

    profile_p = sub.add_parser(
        "profile",
        help="run a mine/sim command under the cross-process profiler "
        "(phase table, utilization timeline, merged worker-lane trace)",
    )
    profile_p.add_argument(
        "rest", nargs=argparse.REMAINDER, metavar="command",
        help="the command to profile, e.g. mine 4-clique --workers 4",
    )

    trend_p = sub.add_parser(
        "bench-trend",
        help="append bench reports to BENCH_history.jsonl and flag "
        "per-cell regressions vs recent history",
    )
    trend_p.add_argument(
        "--history", default=DEFAULT_HISTORY, metavar="FILE",
        help=f"JSONL history file (default: {DEFAULT_HISTORY})",
    )
    trend_p.add_argument(
        "--record", nargs="+", default=[], metavar="REPORT",
        help="bench report JSONs to append before computing trends",
    )
    trend_p.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help="prior samples the per-cell baseline median draws from",
    )
    trend_p.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD_PCT,
        help="regression gate: max slowdown vs baseline, in percent",
    )
    trend_p.add_argument(
        "--report-only", action="store_true",
        help="always exit 0 (CI on pull requests)",
    )
    trend_p.add_argument(
        "--json", action="store_true",
        help="emit a flexminer.run/1 JSON report instead of text",
    )
    trend_p.add_argument(
        "--sha", default=None,
        help="record under this git sha (default: HEAD)",
    )
    trend_p.add_argument(
        "--host", default=None,
        help="record under (and restrict trends to) this host name",
    )

    serve_p = sub.add_parser(
        "serve",
        help="resident mining service: JSON-lines requests on stdin, "
        "one JSON response per line on stdout (see docs/serving.md)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per registered graph's pool (1 = "
        "in-process, exact serial parity)",
    )
    serve_p.add_argument(
        "--max-active", type=int, default=8,
        help="admission limit: in-flight requests beyond this are "
        "rejected with a retryable overload response",
    )
    serve_p.add_argument(
        "--threads", type=int, default=2,
        help="request-executor threads (admitted requests beyond this "
        "wait in the queue)",
    )
    serve_p.add_argument(
        "--no-result-cache", action="store_true",
        help="disable the result/memo cache (every request executes)",
    )
    serve_p.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-request pool timeout in seconds (wedged workers "
        "surface as errors instead of hangs)",
    )
    serve_p.add_argument(
        "--register", action="append", default=[], metavar="NAME=DATASET",
        help="pre-register a suite dataset (repeatable); bare DATASET "
        "registers under its own name",
    )
    serve_p.add_argument(
        "--batch-frontier", action="store_true",
        help="run pool workers in level-synchronous frontier mode "
        "(bit-identical results; see docs/performance.md)",
    )
    serve_p.add_argument(
        "--stats-report", metavar="FILE",
        help="write a final flexminer.run/1 service report on exit "
        "(render with 'flexminer stats FILE')",
    )

    estimate_p = sub.add_parser(
        "estimate", help="per-level search-tree size estimates"
    )
    estimate_p.add_argument("pattern")
    estimate_p.add_argument("--dataset", default="As")
    estimate_p.add_argument("--graph")
    estimate_p.add_argument(
        "--measure", action="store_true",
        help="also measure exact level sizes",
    )
    return parser


def _load(args) -> CSRGraph:
    if getattr(args, "graph", None):
        return load_graph(args.graph)
    return load_dataset(args.dataset)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "datasets":
        print(render_table1())
        return 0

    if args.command == "stats":
        report = load_report(args.report)
        if args.baseline_or_new is None:
            print(render_report(report))
        else:
            rows = diff_reports(report, load_report(args.baseline_or_new))
            print(render_diff(rows, all_rows=args.all))
        return 0

    if args.command == "compile":
        plan = compile_pattern(from_name(args.pattern), induced=args.induced)
        print(emit_ir(plan), end="")
        return 0

    if args.command == "validate":
        from .compiler import parse_ir, validate_plan

        with open(args.ir_file) as f:
            plan = parse_ir(f.read())
        result = validate_plan(plan, trials=args.trials)
        print(result.message())
        return 0 if result else 1

    if args.command == "check-plan":
        import os

        from .analysis import check_multi_plan, check_plan, merge_reports
        from .compiler import MultiPlan, parse_ir

        if not args.targets and not args.corpus:
            print(
                "check-plan: give pattern names, IR files, or --corpus",
                file=sys.stderr,
            )
            return 2
        config = FlexMinerConfig(
            num_pes=args.pes, cmap_bytes=args.cmap_kb * 1024
        )
        reports = []
        for target in args.targets:
            if os.path.exists(target):
                with open(target) as f:
                    plan = parse_ir(f.read())
            else:
                try:
                    pattern = from_name(target)
                except Exception as exc:
                    print(
                        f"check-plan: {target!r} is neither a file nor "
                        f"a known pattern ({exc})",
                        file=sys.stderr,
                    )
                    return 2
                plan = compile_pattern(pattern, induced=args.induced)
            reports.append(check_plan(
                plan,
                config=config,
                frontier_row_limit=args.frontier_row_limit,
                batch_frontier=args.batch_frontier,
            ))
        if args.corpus:
            from .verify import load_corpus

            try:
                cases = load_corpus(args.corpus)
            except FileNotFoundError as exc:
                print(f"check-plan: {exc}", file=sys.stderr)
                return 2
            for path, case in cases:
                compiled = case.compile()
                if isinstance(compiled, MultiPlan):
                    rep = check_multi_plan(
                        compiled, batch_frontier=args.batch_frontier
                    )
                else:
                    rep = check_plan(
                        compiled,
                        config=config,
                        frontier_row_limit=args.frontier_row_limit,
                        batch_frontier=args.batch_frontier,
                    )
                rep.subject = f"{path} ({rep.subject})"
                reports.append(rep)
        merged = merge_reports(reports, subject="check-plan")
        if args.json:
            print(json.dumps(
                merged.to_report(meta={"version": __version__}),
                indent=2, sort_keys=True,
            ))
        else:
            for rep in reports:
                print(rep.render())
                proof = rep.data.get("batch_frontier")
                if proof:
                    shape = proof.get("leaf_shape") or {}
                    shape_txt = (
                        f"{shape['kind']}/slot{shape['fixed_slot']}"
                        if shape.get("kind") is not None else "none"
                    )
                    print(
                        f"  batch-frontier: decision={proof['decision']} "
                        f"leaf={shape_txt} "
                        f"row-limit={proof['row_limit']}"
                    )
                    for ob in proof.get("obligations", []):
                        print(
                            f"    {ob['code']} {ob['status']}: "
                            f"{ob['detail']}"
                        )
            print(
                f"check-plan: {len(reports)} plan(s), "
                f"{len(merged.errors)} error(s), "
                f"{len(merged.warnings)} warning(s)"
            )
        return 0 if merged.ok else 1

    if args.command == "lint":
        import os

        from .analysis import lint_paths

        paths = args.paths or []
        if not paths:
            # Default to the live package tree: src/repro when run from
            # a checkout, the installed package directory otherwise.
            default = os.path.join("src", "repro")
            paths = [
                default
                if os.path.isdir(default)
                else os.path.dirname(os.path.abspath(__file__))
            ]
        missing = [p for p in paths if not os.path.exists(p)]
        if missing:
            print(
                f"lint: no such file or directory: {missing}",
                file=sys.stderr,
            )
            return 2
        fmt = args.format or ("json" if args.json else "text")
        rep = lint_paths(paths)
        if args.update_baseline:
            from .analysis import Baseline, baseline_from_report, save_baseline

            base = baseline_from_report(rep)
            base.path = args.update_baseline
            save_baseline(args.update_baseline, base)
            print(
                f"lint: wrote {len(base)} finding(s) to "
                f"{args.update_baseline}"
            )
            return 0
        if args.baseline:
            from .analysis import apply_baseline, load_baseline

            try:
                base = load_baseline(args.baseline)
            except FileNotFoundError:
                print(
                    f"lint: no such baseline file: {args.baseline}",
                    file=sys.stderr,
                )
                return 2
            except ValueError as exc:
                print(f"lint: {exc}", file=sys.stderr)
                return 2
            rep = apply_baseline(rep, base)
        if fmt == "json":
            print(json.dumps(
                rep.to_report(meta={"version": __version__}),
                indent=2, sort_keys=True,
            ))
        elif fmt == "sarif":
            from .analysis import to_sarif

            print(json.dumps(
                to_sarif(rep, tool_version=__version__),
                indent=2, sort_keys=True,
            ))
        else:
            print(rep.render())
        return 0 if rep.ok else 1

    if args.command == "verify":
        from .obs import write_report
        from .verify import case_to_dict, fuzz, mismatch_report, replay_corpus

        backends = (
            tuple(b.strip() for b in args.backends.split(",") if b.strip())
            if args.backends
            else None
        )
        reports = []
        failed = 0

        if args.corpus:
            replayed = replay_corpus(args.corpus, backends=backends)
            for path, rep in replayed:
                reports.append(rep)
                if not rep.ok:
                    failed += 1
                    print(f"corpus FAIL {path}")
                    for mm in rep.mismatches:
                        print(f"  {mm}")
            print(
                f"corpus: {len(replayed)} case(s) replayed, "
                f"{failed} failed"
            )

        fuzz_report = fuzz(
            seed=args.seed,
            cases=args.cases,
            backends=backends,
            shrink=args.shrink,
            max_pattern_vertices=args.max_pattern,
        )
        for failure in fuzz_report.failures:
            reports.append(failure.report)
            print(f"fuzz FAIL {failure.case.describe()}")
            for mm in failure.report.mismatches:
                print(f"  {mm}")
            if failure.shrunk is not None:
                print(f"  shrunk to: {failure.shrunk.describe()}")
                print(
                    "  reproducer: "
                    + json.dumps(case_to_dict(failure.reproducer()))
                )
        print(
            f"fuzz: seed={args.seed} {fuzz_report.cases_run} case(s), "
            f"{len(fuzz_report.failures)} failed, "
            f"{len(fuzz_report.backends)} backend(s)"
        )

        ok = failed == 0 and fuzz_report.ok
        if args.report:
            payload = mismatch_report(
                reports,
                meta={
                    "seed": args.seed,
                    "cases": args.cases,
                    "corpus": args.corpus,
                    "backends": list(fuzz_report.backends),
                    "version": __version__,
                },
            )
            payload["data"]["fuzz"] = fuzz_report.as_dict()
            write_report(args.report, payload)
            print(f"report written to {args.report}", file=sys.stderr)
        print("verify: OK" if ok else "verify: MISMATCHES FOUND")
        return 0 if ok else 1

    if args.command == "estimate":
        from .compiler import estimate_plan, measure_levels

        graph = _load(args)
        plan = compile_pattern(from_name(args.pattern))
        estimated = estimate_plan(plan, graph)
        measured = (
            measure_levels(plan, graph) if args.measure else None
        )
        print(f"{'depth':>6s}{'estimated':>14s}"
              + (f"{'measured':>14s}" if measured else ""))
        for i, level in enumerate(estimated):
            row = f"{level.depth:>6d}{level.nodes:>14.1f}"
            if measured:
                row += f"{measured[i].nodes:>14.1f}"
            print(row)
        return 0

    if args.command == "motifs":
        graph = _load(args)
        plan = compile_motifs(args.k)
        print(emit_multi_ir(plan))
        result = mine_multi(graph, plan)
        for pattern, count in zip(plan.patterns, result.counts):
            print(f"{pattern.name:<16s}{count:>12d}")
        return 0

    if args.command == "serve":
        return _serve(args)

    if args.command == "bench-trend":
        return _bench_trend(args)

    if args.command == "profile":
        rest = list(args.rest)
        if rest and rest[0] == "--":
            rest = rest[1:]
        if not rest:
            print(
                "profile: give a command to profile, e.g. "
                "flexminer profile mine 4-clique --workers 4",
                file=sys.stderr,
            )
            return 2
        inner = build_parser().parse_args(rest)
        if inner.command not in ("mine", "sim"):
            print(
                f"profile: cannot profile {inner.command!r}; only mine "
                "and sim are supported",
                file=sys.stderr,
            )
            return 2
        return _mine_or_sim(inner, profile=True)

    return _mine_or_sim(args)


def _mine_or_sim(args, *, profile: bool = False) -> int:
    """Shared body of ``mine``/``sim`` (and ``profile`` wrapping them)."""
    trace_path = getattr(args, "trace", None)
    if profile and trace_path is None:
        trace_path = "profile_trace.json"
    tracer = Tracer() if trace_path else NULL_TRACER
    prof = PhaseProfiler(tracer=tracer, enabled=profile)
    with prof.phase("load-graph"):
        graph = _load(args)
    with prof.phase("compile", pattern=args.pattern):
        plan = compile_pattern(from_name(args.pattern), induced=args.induced)
    run_meta = {
        "command": args.command,
        "pattern": args.pattern,
        "dataset": None if args.graph else args.dataset,
        "graph_file": args.graph,
        "induced": args.induced,
        "profiled": profile,
        "version": __version__,
    }

    if args.command == "mine":
        run_meta["workers"] = args.workers
        use_pool = getattr(args, "pool", False)
        split_degree = args.split_degree
        batch_frontier = getattr(args, "batch_frontier", False)
        if batch_frontier:
            run_meta["batch_frontier"] = True
        if split_degree == "auto" and not use_pool:
            print(
                "--split-degree auto needs the calibrated pool; "
                "pass --pool",
                file=sys.stderr,
            )
            return 2
        if use_pool:
            run_meta["pool"] = True
            with prof.phase("setup", workers=args.workers):
                pool = MinerPool(
                    graph, workers=args.workers,
                    batch_frontier=batch_frontier, tracer=tracer,
                    profiler=prof,
                )
            try:
                result = pool.mine(plan, split_degree=split_degree)
                # The calibrated constant the cost model prices chunks
                # against; 0.0 for the in-process workers=1 pool.
                run_meta["dispatch_overhead_s"] = pool.dispatch_overhead_s
            finally:
                pool.close()
        elif profile or args.workers > 1 or split_degree is not None:
            # Profiling always routes through the parallel miner so the
            # trace carries worker lanes at any worker count (workers=1
            # runs in-process with identical results).
            with prof.phase("setup", workers=args.workers):
                miner = ParallelMiner(
                    graph, plan, workers=args.workers,
                    split_degree=split_degree,
                    batch_frontier=batch_frontier, tracer=tracer,
                    profiler=prof,
                )
            result = miner.mine()
        else:
            with prof.phase("setup"):
                engine = PatternAwareEngine(
                    graph, plan, batch_frontier=batch_frontier,
                    tracer=tracer, profiler=prof,
                )
            result = engine.run()
        seconds = cpu_time_seconds(result.counters)
        profile_payload, profile_text = _freeze_profile(prof, profile)
        if trace_path:
            tracer.write(trace_path)
            print(f"trace written to {trace_path}", file=sys.stderr)
        if args.emit_json:
            payload = dict(result.as_dict(), model_seconds=seconds)
            if profile_payload is not None:
                payload["profile"] = profile_payload
            print(json.dumps(
                make_report("mine", payload, meta=run_meta),
                indent=2, sort_keys=True,
            ))
        else:
            print(f"matches: {result.counts[0]}")
            print(f"CPU-20T model: {seconds * 1e3:.3f} ms")
            print(f"set-op iterations: {result.counters.setop_iterations}")
            if profile_text is not None:
                print()
                print(profile_text)
        return 0

    if args.command == "sim":
        config = FlexMinerConfig(
            num_pes=args.pes, cmap_bytes=args.cmap_kb * 1024
        )
        run_meta.update(num_pes=args.pes, cmap_bytes=args.cmap_kb * 1024)
        workers = args.workers
        if workers > 1 and trace_path and not profile:
            print(
                "--trace hooks into simulator internals the parallel "
                "runner bypasses; running serial",
                file=sys.stderr,
            )
            workers = 1
        if workers > 1:
            from .hw.parallel_sim import simulate_parallel

            run_meta["workers"] = workers
            report = simulate_parallel(
                graph, plan, config, workers=workers, profiler=prof
            )
        else:
            report = simulate(
                graph, plan, config, tracer=tracer, profiler=prof
            )
        profile_payload, profile_text = _freeze_profile(prof, profile)
        if trace_path:
            tracer.write(trace_path)
            print(f"trace written to {trace_path}", file=sys.stderr)
        if args.emit_json:
            payload = report.as_dict()
            if profile_payload is not None:
                payload = dict(payload, profile=profile_payload)
            print(json.dumps(
                make_report("sim", payload, meta=run_meta),
                indent=2, sort_keys=True,
            ))
        else:
            print(report.summary())
            if profile_text is not None:
                print()
                print(profile_text)
        return 0

    return 1  # pragma: no cover - argparse enforces commands


def _freeze_profile(prof, profile: bool):
    """Snapshot the profile payload/rendering before the trace write.

    Freezing first keeps the coverage figure about the measured run,
    not about trace serialization.
    """
    if not profile:
        return None, None
    payload = prof.as_dict()
    text = prof.timeline() + "\n\n" + prof.table()
    return payload, text


def _serve(args) -> int:
    """``flexminer serve``: JSON-lines loop over a resident service."""
    from .obs import write_report
    from .serve import MiningService, serve_stream

    service = MiningService(
        workers=args.workers,
        max_active=args.max_active,
        threads=args.threads,
        result_cache=not args.no_result_cache,
        request_timeout_s=args.timeout,
        batch_frontier=args.batch_frontier,
    )
    try:
        for spec in args.register:
            name, _, dataset = spec.partition("=")
            dataset = dataset or name
            service.register_graph(name, load_dataset(dataset))
            print(
                f"serve: registered {name!r} ({dataset})", file=sys.stderr
            )
        handled = serve_stream(service, sys.stdin, sys.stdout)
        print(f"serve: handled {handled} request(s)", file=sys.stderr)
        if args.stats_report:
            write_report(
                args.stats_report,
                service.stats_report(version=__version__),
            )
            print(
                f"serve: stats written to {args.stats_report}",
                file=sys.stderr,
            )
    finally:
        service.close()
    return 0


def _bench_trend(args) -> int:
    from .obs.trend import (
        compute_trends,
        load_history,
        record_report,
        regressions,
        render_trends,
    )

    recorded = 0
    for path in args.record:
        try:
            report = load_report(path)
        except (OSError, ValueError) as exc:
            print(
                f"bench-trend: cannot read {path}: {exc}", file=sys.stderr
            )
            return 2
        recorded += record_report(
            args.history, report, sha=args.sha, host=args.host
        )
    if recorded:
        print(
            f"recorded {recorded} cell(s) into {args.history}",
            file=sys.stderr,
        )
    entries = load_history(args.history)
    trends = compute_trends(entries, window=args.window, host=args.host)
    regressed = regressions(trends, threshold_pct=args.threshold)
    if args.json:
        payload = {
            "trends": [t.as_dict() for t in trends],
            "regressions": [t.as_dict() for t in regressed],
            "threshold_pct": args.threshold,
            "window": args.window,
        }
        print(json.dumps(
            make_report("bench-trend", payload, meta={
                "history": args.history, "version": __version__,
            }),
            indent=2, sort_keys=True,
        ))
    else:
        print(render_trends(trends, threshold_pct=args.threshold))
        if regressed:
            print(
                f"bench-trend: {len(regressed)} regression(s) above "
                f"{args.threshold:.0f}%"
            )
    if regressed and not args.report_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
