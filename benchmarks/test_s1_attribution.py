"""§VII-E — speedup attribution (S1).

Paper: the 40-PE no-cmap speedup over the CPU baseline decomposes into
PE specialization (3.04x) and multithreading (1.76x); adding the 8 kB
c-map contributes a further 1.36x on average (up to 4.82x for some
patterns).
"""

import pytest

from repro.bench import geometric_mean, speedup_attribution


def test_s1_attribution(benchmark, harness, save_artifact):
    attr = benchmark.pedantic(
        lambda: speedup_attribution(harness), rounds=1, iterations=1
    )

    # One PE beats one CPU thread on the same work (specialization).
    assert attr["specialization"] > 1.5
    # Scaling to 40 PEs adds a real multithreading factor over 20T.
    assert attr["multithreading"] > 1.2
    # The decomposition is multiplicative by construction.
    product = attr["specialization"] * attr["multithreading"]
    assert product == pytest.approx(attr["total_no_cmap"], rel=1e-6)

    # c-map contribution on the c-map-friendly app (4-cycle).
    cy = [
        harness.sim("SL-4cycle", ds, num_pes=20, cmap_bytes=0).cycles
        / harness.sim("SL-4cycle", ds, num_pes=20, cmap_bytes=8192).cycles
        for ds in ("As", "Mi", "Pa")
    ]
    cmap_gain = geometric_mean(cy)
    assert cmap_gain > 1.1

    save_artifact(
        "s1_attribution.txt",
        "S1 speedup attribution (4-CL on Mi, 40 PE)\n"
        f"  specialization : {attr['specialization']:.2f}x (paper 3.04x)\n"
        f"  multithreading : {attr['multithreading']:.2f}x (paper 1.76x)\n"
        f"  total no-cmap  : {attr['total_no_cmap']:.2f}x (paper 5.15x avg)\n"
        f"  c-map on 4-cycle (20 PE geomean): {cmap_gain:.2f}x "
        f"(paper 1.36x avg overall, 3.0x on 4-cycle)",
    )
