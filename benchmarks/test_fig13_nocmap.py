"""Fig. 13 — FlexMiner without c-map vs GraphZero-20T.

Paper shape: 10 PEs already beat the 20-thread CPU for most cases
despite the 3x lower clock; speedup grows with PE count (averages 1.56x
/ 2.93x / 5.15x at 10/20/40 PEs); TC on the large sparse graphs gains
least (memory bound).
"""

from repro.bench import (
    PE_SWEEP_FIG13,
    fig13_nocmap_speedups,
    geometric_mean,
    render_series,
)


def test_fig13(benchmark, harness, save_artifact):
    series = benchmark.pedantic(
        lambda: fig13_nocmap_speedups(harness), rounds=1, iterations=1
    )

    flat = {
        pes: [series[a][d][pes] for a in series for d in series[a]]
        for pes in PE_SWEEP_FIG13
    }
    means = {pes: geometric_mean(vals) for pes, vals in flat.items()}

    # Speedup grows with the PE count on average.
    assert means[10] < means[20] < means[40]
    # The 10-PE configuration already competes with the 20-thread CPU
    # for most cells (paper: "already outperform for most cases").
    wins10 = sum(1 for v in flat[10] if v >= 1.0)
    assert wins10 >= len(flat[10]) * 0.6
    # 40 PEs win decisively on average.
    assert means[40] > 2.0
    # TC benefits least of the compute-heavy apps (paper: "TC has the
    # least computation of all applications"): it is never the app with
    # the highest average speedup.
    app_means = {
        app: geometric_mean(
            [series[app][d][40] for d in series[app]]
        )
        for app in series
    }
    assert app_means["TC"] < max(app_means.values())

    text = render_series(
        "Fig 13: FlexMiner (no c-map) speedup over GraphZero-20T",
        series,
        key_format=lambda pes: f"{pes}PE",
    )
    text += "\n  geomean: " + "  ".join(
        f"{pes}PE={means[pes]:.2f}" for pes in PE_SWEEP_FIG13
    )
    save_artifact("fig13.txt", text)
