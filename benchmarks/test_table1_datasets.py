"""Table I — the input-graph suite (paper §VII-A).

Regenerates the dataset table for the synthetic stand-ins and checks the
shape properties the evaluation relies on: Mi densest, As smallest,
heavy-tailed degrees everywhere.
"""

from repro.bench import render_table1, table1_rows
from repro.graph import load_dataset


def test_table1(benchmark, save_artifact):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    by_name = {r[0]: r for r in rows}

    assert set(by_name) == {"As", "Mi", "Pa", "Yo", "Lj", "Or"}
    # As is the smallest graph; Mi is the densest of the figure suite.
    assert by_name["As"][1] == min(r[1] for r in rows)
    figure_suite = ["As", "Mi", "Pa", "Yo", "Lj"]
    assert by_name["Mi"][4] == max(by_name[n][4] for n in figure_suite)
    # Heavy tails: max degree far above average everywhere.
    for name, _, _, dmax, davg in rows:
        assert dmax > 4 * davg, name

    save_artifact("table1.txt", render_table1())


def test_graph_load_throughput(benchmark):
    """Kernel timing: building the largest stand-in from scratch."""
    from repro.graph.datasets import _CACHE

    def build():
        _CACHE.pop("Or", None)
        return load_dataset("Or")

    graph = benchmark.pedantic(build, rounds=1, iterations=1)
    assert graph.num_edges > 0
