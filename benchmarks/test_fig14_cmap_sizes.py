"""Fig. 14 — performance impact of the c-map at different sizes.

Paper shape: 4-cycle benefits most (no frontier reuse, heavy c-map
reuse); k-CL and diamond benefit little (frontier memoization already
covers them); a small c-map already captures most of the unlimited
c-map's benefit; the c-map never degrades performance.
"""

from repro.bench import (
    CMAP_SIZES,
    UNLIMITED_CMAP,
    fig14_cmap_sizes,
    geometric_mean,
    render_series,
)


def app_mean(series, app, size):
    return geometric_mean(
        [series[app][d][size] for d in series[app]]
    )


def test_fig14(benchmark, harness, save_artifact):
    series = benchmark.pedantic(
        lambda: fig14_cmap_sizes(harness), rounds=1, iterations=1
    )

    # 4-cycle gains the most from the c-map (paper: 3.0x average there,
    # "no frontier list reuse in 4-cycle while c-map is reused heavily").
    gains = {
        app: app_mean(series, app, UNLIMITED_CMAP) for app in series
    }
    assert gains["SL-4cycle"] == max(gains.values())
    # k-CL sees little additional benefit over frontier memoization.
    assert gains["5-CL"] < 1.15
    # The c-map (with compiler hints) never hurts.
    for app in series:
        for ds in series[app]:
            for size, value in series[app][ds].items():
                assert value > 0.93, (app, ds, size, value)
    # A small c-map captures most of the unlimited benefit (paper: 4 kB).
    for app in series:
        small = app_mean(series, app, 8192)
        unlimited = app_mean(series, app, UNLIMITED_CMAP)
        assert small >= 0.85 * unlimited, app

    text = render_series(
        "Fig 14: speedup over no-cmap at 20 PEs, by c-map size",
        series,
        key_format=lambda size: (
            "unl" if size == UNLIMITED_CMAP else f"{size // 1024}k"
        ),
    )
    text += "\n  app geomeans (unlimited): " + "  ".join(
        f"{app}={gains[app]:.2f}" for app in sorted(gains)
    )
    save_artifact("fig14.txt", text)
