"""Ablation benches for the design choices DESIGN.md calls out.

* matching-order selection rule (best vs worst connected order);
* k-clique orientation vs symmetry-order checking;
* frontier-list memoization on/off;
* c-map occupancy threshold;
* c-map banking factor.
"""

from repro.bench import cpu_time_seconds
from repro.compiler import (
    compile_pattern,
    enumerate_matching_orders,
    score_matching_order,
)
from repro.engine import PatternAwareEngine
from repro.graph import load_dataset
from repro.hw import FlexMinerConfig, simulate
from repro.patterns import diamond, four_cycle, k_clique


def test_ablation_matching_order(benchmark, save_artifact):
    """The compiler's order beats the worst connected order (Fig. 5)."""
    graph = load_dataset("As")
    pattern = diamond()

    def run():
        orders = enumerate_matching_orders(pattern)
        worst = min(
            orders, key=lambda o: score_matching_order(pattern, o)
        )
        best_plan = compile_pattern(pattern, use_orientation=False)
        worst_plan = compile_pattern(
            pattern, use_orientation=False, matching_order=worst
        )
        best = PatternAwareEngine(graph, best_plan).run()
        bad = PatternAwareEngine(graph, worst_plan).run()
        assert best.counts == bad.counts
        return (
            best.counters.setop_iterations,
            bad.counters.setop_iterations,
        )

    best_iters, worst_iters = benchmark.pedantic(run, rounds=1, iterations=1)
    assert best_iters < worst_iters
    save_artifact(
        "ablation_matching_order.txt",
        "diamond on As, SIU iterations: "
        f"chosen order={best_iters}, worst order={worst_iters} "
        f"({worst_iters / best_iters:.2f}x more work)",
    )


def test_ablation_orientation(benchmark, save_artifact):
    """Orientation vs symmetry-order checks for 4-CL (§V-C)."""
    graph = load_dataset("Mi")

    def run():
        oriented = compile_pattern(k_clique(4))
        ordered = compile_pattern(k_clique(4), use_orientation=False)
        a = PatternAwareEngine(graph, oriented).run()
        b = PatternAwareEngine(graph, ordered).run()
        assert a.counts == b.counts
        return (
            cpu_time_seconds(a.counters),
            cpu_time_seconds(b.counters),
        )

    t_oriented, t_ordered = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t_oriented < t_ordered
    save_artifact(
        "ablation_orientation.txt",
        "4-CL on Mi (CPU model): "
        f"oriented={t_oriented * 1e3:.3f} ms, "
        f"symmetry-order={t_ordered * 1e3:.3f} ms "
        f"({t_ordered / t_oriented:.2f}x)",
    )


def test_ablation_frontier_memo(benchmark, save_artifact):
    """Frontier memoization saves set-op work for diamond (§V-C)."""
    graph = load_dataset("Mi")
    plan = compile_pattern(diamond(), use_orientation=False)

    def run():
        on = PatternAwareEngine(graph, plan, use_frontier_memo=True).run()
        off = PatternAwareEngine(graph, plan, use_frontier_memo=False).run()
        assert on.counts == off.counts
        return (
            on.counters.setop_iterations,
            off.counters.setop_iterations,
        )

    with_memo, without = benchmark.pedantic(run, rounds=1, iterations=1)
    assert with_memo < without * 0.8
    save_artifact(
        "ablation_frontier_memo.txt",
        f"diamond on Mi, SIU iterations: memo={with_memo}, "
        f"no-memo={without} ({without / with_memo:.2f}x more work)",
    )


def test_ablation_cmap_threshold(benchmark, save_artifact):
    """Occupancy threshold trades fall-backs for probe latency (§VI-B)."""
    graph = load_dataset("Yo")
    plan = compile_pattern(four_cycle())

    def run():
        rows = {}
        for threshold in (0.25, 0.75, 1.0):
            config = FlexMinerConfig(
                num_pes=4,
                cmap_bytes=1024,
                cmap_occupancy_threshold=threshold,
            )
            report = simulate(graph, plan, config)
            rows[threshold] = (report.cycles, report.cmap_overflows)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    counts = {r for r in rows}
    assert len(counts) == 3
    # A stingier threshold rejects more insertions.
    assert rows[0.25][1] >= rows[1.0][1]

    lines = ["4-cycle on Yo, 1 kB c-map, occupancy threshold sweep:"]
    for threshold, (cycles, overflows) in sorted(rows.items()):
        lines.append(
            f"  threshold={threshold:.2f}: cycles={cycles:.0f} "
            f"overflows={overflows}"
        )
    save_artifact("ablation_cmap_threshold.txt", "\n".join(lines))


def test_ablation_cmap_banks(benchmark, save_artifact):
    """Banked parallel probing cuts probe cycles (§VI-A, m=4)."""
    from repro.hw import HardwareCMap

    def run():
        results = {}
        for banks in (1, 2, 4, 8):
            cmap = HardwareCMap(
                512, banks=banks, occupancy_threshold=0.75, exact=True
            )
            # Adversarial: keys hashing near the same slots.
            cmap.try_insert([i * 512 // 8 for i in range(8)], depth=0)
            cmap.try_insert(
                [i * 512 // 8 + 512 for i in range(8)], depth=1
            )
            results[banks] = cmap.stats.insert_cycles
        return results

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cycles[4] <= cycles[1]
    save_artifact(
        "ablation_cmap_banks.txt",
        "c-map insert cycles under collisions by bank count: "
        + ", ".join(f"m={m}: {c}" for m, c in sorted(cycles.items())),
    )


def test_ablation_task_splitting(benchmark, save_artifact):
    """Extension: fine-grained task splitting vs one-task-per-root.

    On power-law inputs a hub with a large vertex id owns a straggler
    task (the symmetry order roots matches at their largest vertex);
    splitting its depth-1 range restores scaling headroom.
    """
    graph = load_dataset("Yo")
    plan = compile_pattern(four_cycle())

    def run():
        rows = {}
        for split in (None, 64, 16):
            config = FlexMinerConfig(
                num_pes=40, task_split_degree=split
            )
            report = simulate(graph, plan, config)
            rows[split] = (report.cycles, report.load_imbalance)
        counts = {  # splitting never changes the answer
            simulate(
                graph, plan, FlexMinerConfig(num_pes=4,
                                             task_split_degree=s)
            ).counts
            for s in (None, 16)
        }
        assert len(counts) == 1
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base_cycles, base_imbalance = rows[None]
    best_cycles = min(cycles for cycles, _ in rows.values())
    assert best_cycles <= base_cycles

    lines = ["4-cycle on Yo at 40 PEs, task-splitting sweep:"]
    for split, (cycles, imbalance) in rows.items():
        label = "none" if split is None else f"deg/{split}"
        lines.append(
            f"  split={label:<8s} cycles={cycles:>12.0f} "
            f"imbalance={imbalance:.2f}"
        )
    save_artifact("ablation_task_splitting.txt", "\n".join(lines))
