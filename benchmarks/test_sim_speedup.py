"""Wall-clock bench for the simulator timing kernels and parallel runner.

Times the legacy per-element timing path against the vectorized kernels,
the task-sharded parallel runner (1/2/4 trace workers), and the
cell-level sweep pool; asserts bit-identical ``SimReport`` parity for
every mode and writes the cross-PR diffable ``BENCH_sim.json`` artifact
(plus a human-readable text summary under ``benchmarks/results/``).
"""

import json
import os

from repro.bench import sim_bench, write_sim_bench


def _render(payload) -> str:
    lines = [
        f"sim bench (cpu_count={payload['cpu_count']}, "
        f"pool_workers={payload['pool_workers']}, "
        f"quick={payload['quick_mode']})"
    ]
    for cell, entry in payload["cell"].items():
        lines.append(
            f"  {cell}: legacy {entry['legacy_seconds'] * 1e3:8.2f} ms, "
            f"kernels {entry['fast_seconds'] * 1e3:8.2f} ms "
            f"({entry['fast_speedup']:.2f}x)"
        )
        for workers, par in sorted(
            entry["parallel"].items(), key=lambda kv: int(kv[0])
        ):
            lines.append(
                f"    {workers} trace worker(s): "
                f"{par['seconds'] * 1e3:8.2f} ms "
                f"({par['speedup_vs_legacy']:.2f}x vs legacy)"
            )
    sweep = payload["sweep"]
    lines.append(
        f"  sweep ({len(sweep['cells'])} cells): "
        f"legacy {sweep['legacy_seconds'] * 1e3:8.2f} ms, "
        f"serial {sweep['serial_seconds'] * 1e3:8.2f} ms, "
        f"pool {sweep['pool_seconds'] * 1e3:8.2f} ms "
        f"({sweep['speedup_vs_legacy']:.2f}x vs legacy, "
        f"target {payload['targets']['sweep_speedup']:.1f}x)"
    )
    return "\n".join(lines)


def test_sim_speedup_bench(benchmark, harness, save_artifact):
    """Timing kernels + parallel runner vs legacy loops, with parity."""
    payload = benchmark.pedantic(
        lambda: sim_bench(harness), rounds=1, iterations=1
    )

    # Bit-identical parity is asserted inside sim_bench; spot-check the
    # payload shape and that the acceptance cell is present.
    assert "4-CL_As" in payload["cell"]
    cell = payload["cell"]["4-CL_As"]
    assert cell["counts"] and cell["fast_seconds"] > 0
    assert set(cell["parallel"]) == {"1", "2", "4"}
    assert payload["sweep"]["pool_seconds"] > 0
    assert payload["metrics"]["sim.wall_s"] > 0

    # The artifact: next to the telemetry dir when set, else results/.
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    default = os.path.join(results_dir, "BENCH_sim.json")
    path = write_sim_bench(
        None if harness.telemetry_dir else default, harness
    )
    with open(path) as f:
        report = json.load(f)
    assert report["data"]["cell"].keys() == payload["cell"].keys()

    save_artifact("sim_speedup.txt", _render(payload))
