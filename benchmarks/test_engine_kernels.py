"""Wall-clock bench for the CPU-engine kernel layer and parallel backend.

Times the frozen pre-kernel engine (``LegacyEngine``) against the
current serial engine, the multi-process ``ParallelMiner`` (per-call
spawn) and the warmed persistent ``MinerPool``, plus a request-stream
cell separating steady-state throughput from cold-start and a
``frontier_sweep`` (recursive vs level-synchronous batch frontier at
workers 1/2/4 with peak RSS); asserts
count/counter parity, and writes the cross-PR diffable
``BENCH_engine.json`` artifact (plus a human-readable text summary under
``benchmarks/results/``).
"""

import json
import os

from repro.bench import engine_bench, write_engine_bench


def _render(payload) -> str:
    lines = [
        f"engine bench (cpu_count={payload['cpu_count']}, "
        f"quick={payload['quick_mode']})"
    ]
    for cell, entry in payload["cells"].items():
        lines.append(
            f"  {cell}: legacy {entry['legacy_seconds'] * 1e3:8.2f} ms, "
            f"kernel {entry['kernel_seconds'] * 1e3:8.2f} ms "
            f"({entry['kernel_speedup']:.2f}x)"
        )
        for mode in ("parallel", "pool"):
            for workers, sub in sorted(
                entry[mode].items(), key=lambda kv: int(kv[0])
            ):
                lines.append(
                    f"    {mode} x{workers}: "
                    f"{sub['seconds'] * 1e3:8.2f} ms "
                    f"({sub['speedup_vs_legacy']:.2f}x vs legacy, "
                    f"{sub['speedup_vs_kernel']:.2f}x vs kernel)"
                )
    for cell, sweep in payload["frontier_sweep"].items():
        for workers, sub in sorted(
            sweep.items(), key=lambda kv: int(kv[0])
        ):
            lines.append(
                f"  frontier {cell} x{workers}: "
                f"recursive {sub['recursive_seconds'] * 1e3:8.2f} ms "
                f"({sub['recursive_peak_rss_kb']} kB), "
                f"batch {sub['batch_seconds'] * 1e3:8.2f} ms "
                f"({sub['batch_peak_rss_kb']} kB) -> "
                f"{sub['speedup']:.2f}x"
            )
    for cell, stream in payload["stream"].items():
        if "warm_cells_per_s" in stream:
            lines.append(
                f"  stream {cell}: warm {stream['warm_cells_per_s']:.1f} "
                f"cells/s vs spawn {stream['spawn_cells_per_s']:.1f} "
                f"cells/s ({stream['warm_vs_spawn_speedup']:.2f}x, "
                f"dispatch {stream['dispatch_overhead_s'] * 1e6:.0f} us)"
            )
        else:
            lines.append(
                f"  stream {cell}: cached "
                f"{stream['cached_cells_per_s']:.1f} cells/s vs executed "
                f"{stream['executed_cells_per_s']:.1f} cells/s "
                f"({stream['cached_vs_executed_speedup']:.2f}x)"
            )
    return "\n".join(lines)


def test_engine_kernel_bench(benchmark, harness, save_artifact):
    """Kernel layer vs legacy engine vs parallel sweep, with parity."""
    payload = benchmark.pedantic(
        lambda: engine_bench(harness), rounds=1, iterations=1
    )

    # Parity is asserted inside engine_bench; spot-check the payload
    # shape and that the acceptance cell is present.
    assert "4-CL_As" in payload["cells"]
    cell = payload["cells"]["4-CL_As"]
    assert cell["counts"] and cell["kernel_seconds"] > 0
    assert set(cell["parallel"]) == {"1", "2", "4"}
    assert set(cell["pool"]) == {"1", "2", "4"}

    # The frontier sweep covers both apps at every worker count, and
    # its parity (counts AND op counters, recursive vs batch) is
    # asserted inside engine_bench.
    assert set(payload["frontier_sweep"]) == {"4-CL_As", "TC_As"}
    for sweep in payload["frontier_sweep"].values():
        assert set(sweep) == {"1", "2", "4"}
        for sub in sweep.values():
            assert sub["recursive_seconds"] > 0
            assert sub["batch_seconds"] > 0

    # The stream cell must separate steady-state from cold-start and
    # carry the calibrated dispatch-overhead constant in the envelope.
    assert payload["stream"], "stream section missing"
    stream = next(iter(payload["stream"].values()))
    assert stream["warm_pool_seconds"] > 0
    assert stream["spawn_seconds"] > 0
    assert payload["dispatch_overhead_s"] >= 0

    # The artifact: next to the telemetry dir when set, else results/.
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    default = os.path.join(results_dir, "BENCH_engine.json")
    path = write_engine_bench(
        None if harness.telemetry_dir else default, harness
    )
    with open(path) as f:
        report = json.load(f)
    assert report["data"]["cells"].keys() == payload["cells"].keys()

    save_artifact("engine_kernels.txt", _render(payload))
