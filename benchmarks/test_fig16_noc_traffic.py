"""Fig. 16 — NoC traffic (L2 accesses) and DRAM accesses vs c-map size.

Paper shape: the c-map cuts NoC traffic for the apps that reuse
connectivity (4-cycle, diamond, TC) by removing repeated edgelist
fetches; for k-CL the traffic stays the same because the frontier lists
already removed those requests.

Note on scale: with the scaled-down inputs, the graphs on the small
datasets fit in the 32 kB private cache, so their NoC traffic is
compulsory-miss dominated and the reduction concentrates on the cells
with real cache pressure (Pa).  EXPERIMENTS.md discusses this regime
difference.
"""

from repro.bench import fig16_traffic


def test_fig16(benchmark, harness, save_artifact):
    traffic = benchmark.pedantic(
        lambda: fig16_traffic(harness), rounds=1, iterations=1
    )

    for app in traffic:
        for ds in traffic[app]:
            cells = traffic[app][ds]
            # The c-map never *adds* NoC traffic beyond scheduler
            # placement noise (it removes edgelist fetches and adds none
            # of its own — it is a scratchpad).  Timing changes shuffle
            # which PE gets which task, so cold misses jitter by a few
            # percent.
            assert cells[8192]["noc"] <= cells[0]["noc"] * 1.10, (app, ds)
            assert cells[8192]["dram"] <= cells[0]["dram"] * 1.10, (app, ds)

    # k-CL traffic is essentially unchanged by the c-map (paper: the
    # frontier list already cut the same requests).
    for ds, cells in traffic["4-CL"].items():
        assert cells[8192]["noc"] >= 0.90 * cells[0]["noc"], ds

    # Where there is cache pressure (Pa exceeds the private cache),
    # 4-cycle sees a real reduction.  Quick mode only runs As.
    if "Pa" in traffic["SL-4cycle"]:
        pa = traffic["SL-4cycle"]["Pa"]
        assert pa[8192]["noc"] < pa[0]["noc"]

    lines = ["Fig 16: NoC requests / DRAM accesses by c-map size (20 PE)"]
    for app in traffic:
        for ds, cells in traffic[app].items():
            row = "  ".join(
                f"{size // 1024}k:{c['noc']}/{c['dram']}"
                if size
                else f"no:{c['noc']}/{c['dram']}"
                for size, c in cells.items()
            )
            lines.append(f"  {app:<11s} {ds:<3s} {row}")
    save_artifact("fig16.txt", "\n".join(lines))
