"""Table II — Gramer (FPGA) vs AutoMine (CPU) vs GraphZero (CPU).

The paper's point: GraphZero on a CPU beats the Gramer FPGA accelerator
almost everywhere (8.3x average) because pattern awareness shrinks the
search tree by orders of magnitude, and GraphZero beats AutoMine by
adding symmetry breaking.  We regenerate the table from modelled
runtimes over measured work (DESIGN.md §2) and assert that ordering.
"""

from repro.bench import geometric_mean, render_table2, table2_rows


def test_table2(benchmark, save_artifact):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)

    ratios = []
    for row in rows:
        # GraphZero is the fastest system in (almost) every row.
        assert row["graphzero_s"] <= row["automine_s"], row
        ratios.append(row["gramer_s"] / row["graphzero_s"])

    # GraphZero beats the Gramer-model FPGA by a wide average margin.
    assert geometric_mean(ratios) > 3.0
    # ... and in the large majority of rows individually.
    wins = sum(1 for r in ratios if r > 1.0)
    assert wins >= len(ratios) - 1

    save_artifact("table2.txt", render_table2(rows))
