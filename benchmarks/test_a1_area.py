"""§VII-A — PE area/frequency comparison (A1).

Paper constants: one PE (32 kB private cache + 8 kB scratchpad) is
0.18 mm2 at 1.3 GHz; a Skylake core is ~15 mm2 at ~4 GHz; 64 PEs take
about one CPU core of area at one third of its clock.
"""

import pytest

from repro.hw import AreaModel, FlexMinerConfig, PE_AREA_MM2


def test_a1_area(benchmark, save_artifact):
    model = benchmark.pedantic(
        lambda: AreaModel(FlexMinerConfig(num_pes=64)),
        rounds=1,
        iterations=1,
    )
    assert model.pe_area_mm2 == pytest.approx(PE_AREA_MM2, rel=0.01)
    assert 0.5 < model.skylake_core_equivalents < 1.2
    assert model.clock_ratio_vs_cpu == pytest.approx(1.3 / 4.0)

    sweep = [
        (cmap, AreaModel(FlexMinerConfig(cmap_bytes=cmap)).pe_area_mm2)
        for cmap in (0, 1024, 4096, 8192, 16384)
    ]
    lines = [
        "A1: " + model.summary(),
        "PE area vs c-map size:",
    ] + [f"  cmap={c // 1024}kB -> {a:.3f} mm2" for c, a in sweep]
    save_artifact("a1_area.txt", "\n".join(lines))
