"""Shared fixtures for the benchmark suite.

Every bench wraps its experiment in ``benchmark.pedantic(..., rounds=1)``
so ``pytest benchmarks/ --benchmark-only`` both times the harness and
regenerates the paper artifact.  Rendered tables/series are printed and
saved under ``benchmarks/results/``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def harness():
    from repro.bench import get_harness

    h = get_harness()
    yield h
    # When REPRO_BENCH_TELEMETRY is set, roll the session's cells into
    # the cross-PR diffable BENCH_summary.json and append its timing
    # cells to the longitudinal BENCH_history.jsonl (append-only: a
    # rerun extends the trajectory, it never replaces it).
    if h.telemetry_dir:
        summary_path = h.write_summary()
        from repro.obs import load_report
        from repro.obs.trend import record_report

        history = os.path.join(h.telemetry_dir, "BENCH_history.jsonl")
        cells = record_report(history, load_report(summary_path))
        print(f"[bench-trend] {cells} cell(s) appended to {history}")


@pytest.fixture()
def save_artifact():
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, text: str) -> str:
        path = os.path.join(RESULTS_DIR, name)
        with open(path, "w") as f:
            f.write(text if text.endswith("\n") else text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
