"""Shared fixtures for the benchmark suite.

Every bench wraps its experiment in ``benchmark.pedantic(..., rounds=1)``
so ``pytest benchmarks/ --benchmark-only`` both times the harness and
regenerates the paper artifact.  Rendered tables/series are printed and
saved under ``benchmarks/results/``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def harness():
    from repro.bench import get_harness

    return get_harness()


@pytest.fixture()
def save_artifact():
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, text: str) -> str:
        path = os.path.join(RESULTS_DIR, name)
        with open(path, "w") as f:
            f.write(text if text.endswith("\n") else text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
