"""Benches for the extensions beyond the paper's evaluated scope.

* labeled mining (the intro's PPI motivation, §I);
* partitioned mining (the §VII-D future-work remark);
* energy comparison vs the CPU baseline (§I efficiency claim);
* 4-MC — the multi-pattern app at the next motif size (Fig. 3 right);
* the software vector c-map (§II-C cites an average 2.3x for k-CL).
"""


from repro.bench import cpu_time_seconds, get_harness
from repro.compiler import compile_motifs, compile_pattern
from repro.engine import (
    CMapSoftwareEngine,
    PartitionedMiner,
    PatternAwareEngine,
    mine,
    mine_multi,
)
from repro.graph import assign_random_labels, load_dataset
from repro.hw import (
    FlexMinerConfig,
    cpu_energy,
    estimate_energy,
    simulate,
)
from repro.patterns import k_clique, triangle


def test_ext_labeled_mining(benchmark, save_artifact):
    """Label constraints prune the tree; all paths agree."""
    base = load_dataset("Mi")
    graph = assign_random_labels(base, 3, seed=5)

    def run():
        rows = {}
        unlabeled = compile_pattern(triangle())
        rows["unlabeled"] = mine(graph, unlabeled)
        labeled = compile_pattern(triangle().with_labels([0, 1, 2]))
        rows["labeled"] = mine(graph, labeled)
        report = simulate(
            graph, labeled, FlexMinerConfig(num_pes=20)
        )
        assert report.counts == rows["labeled"].counts
        rows["sim_cycles"] = report.cycles
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    labeled, unlabeled = rows["labeled"], rows["unlabeled"]
    assert 0 < labeled.counts[0] < unlabeled.counts[0]
    assert (
        labeled.counters.setop_iterations
        < unlabeled.counters.setop_iterations
    )
    save_artifact(
        "ext_labeled.txt",
        "labeled TC on Mi (3 uniform labels): "
        f"{labeled.counts[0]}/{unlabeled.counts[0]} triangles survive; "
        f"work {labeled.counters.setop_iterations}/"
        f"{unlabeled.counters.setop_iterations} SIU iterations",
    )


def test_ext_partitioned_mining(benchmark, save_artifact):
    """§VII-D: partition the roots, mine halos, same counts."""
    graph = load_dataset("Lj")
    plan = compile_pattern(k_clique(4))

    def run():
        whole = mine(graph, plan).counts[0]
        rows = {}
        for parts in (4, 16, 64):
            miner = PartitionedMiner(graph, plan, parts)
            result = miner.run()
            assert result.counts[0] == whole
            rows[parts] = miner.max_working_set_edges()
        return whole, rows

    total, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # More partitions -> smaller max working set (the memory win).
    sizes = [rows[p] for p in sorted(rows)]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[-1] < graph.num_edges / 2

    lines = [
        f"4-CL on Lj = {total} cliques; max halo edges by partition "
        f"count (full graph: {graph.num_edges}):"
    ]
    lines += [f"  parts={p:<3d} halo_edges={rows[p]}" for p in sorted(rows)]
    save_artifact("ext_partitioned.txt", "\n".join(lines))


def test_ext_energy(benchmark, save_artifact):
    """FlexMiner's energy advantage on identical mining work."""
    harness = get_harness()

    def run():
        report = harness.sim("4-CL", "Mi", num_pes=40)
        seconds, _ = harness.cpu("4-CL", "Mi")
        accel = estimate_energy(
            report, FlexMinerConfig(num_pes=40)
        )
        cpu = cpu_energy(seconds)
        return accel, cpu

    accel, cpu = benchmark.pedantic(run, rounds=1, iterations=1)
    assert accel.total_j < cpu.total_j
    ratio = cpu.total_j / accel.total_j
    save_artifact(
        "ext_energy.txt",
        "4-CL on Mi: FlexMiner-40PE "
        f"{accel.total_j * 1e6:.1f} uJ vs CPU-20T "
        f"{cpu.total_j * 1e6:.1f} uJ -> {ratio:.1f}x more "
        f"energy-efficient\n  accelerator: {accel.summary()}",
    )


def test_ext_4mc(benchmark, save_artifact):
    """4-motif counting: the multi-pattern tree at the next size."""
    graph = load_dataset("As")
    plan = compile_motifs(4)

    def run():
        sw = mine_multi(graph, plan)
        report = simulate(graph, plan, FlexMinerConfig(num_pes=20))
        assert report.counts == sw.counts
        return sw, report

    sw, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(sw.counts) == 6
    assert sum(sw.counts) > 0

    lines = ["4-MC on As (multi-pattern dependency tree):"]
    for pattern, count in zip(plan.patterns, sw.counts):
        lines.append(f"  {pattern.name:<16s}{count:>12d}")
    lines.append(f"  sim cycles: {report.cycles:.0f} on 20 PEs")
    save_artifact("ext_4mc.txt", "\n".join(lines))


def test_ext_software_cmap(benchmark, save_artifact):
    """§II-C: the software vector c-map speeds up k-CL on the CPU.

    Modelled as merge-loop cycles replaced by c-map accesses (which pay
    a higher per-access cost for their cache hostility, §VI).
    """
    graph = load_dataset("Mi")
    plan = compile_pattern(k_clique(4))

    def run():
        merge = PatternAwareEngine(graph, plan)
        merge_result = merge.run()
        cm = CMapSoftwareEngine(graph, plan)
        cm_result = cm.run()
        assert merge_result.counts == cm_result.counts
        t_merge = cpu_time_seconds(merge_result.counters)
        # c-map engine: remaining set-op work plus vector accesses at
        # 3 cycles each (poor locality: one useful byte per line).
        access_cycles = 3.0 * (cm.cmap.reads + cm.cmap.writes)
        t_cmap = cpu_time_seconds(cm_result.counters) + access_cycles / (
            20 * 4e9
        )
        return t_merge, t_cmap

    t_merge, t_cmap = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = t_merge / t_cmap
    # The paper cites an average 2.3x for k-CL [21]; shape check only.
    assert speedup > 1.0
    save_artifact(
        "ext_software_cmap.txt",
        f"4-CL on Mi, CPU model: merge-based {t_merge * 1e3:.3f} ms vs "
        f"vector c-map {t_cmap * 1e3:.3f} ms -> {speedup:.2f}x "
        f"(paper cites 2.3x average)",
    )
