"""Fig. 15 — performance scaling from 1 to 64 PEs (8 kB c-map).

Paper shape: generally linear scaling; As — the smallest dataset —
scales worst because it offers the fewest tasks; TC scaling is close to
perfect on the larger inputs.
"""

from repro.bench import PE_SWEEP_FIG15, fig15_pe_scaling, render_series


def test_fig15(benchmark, harness, save_artifact):
    series = benchmark.pedantic(
        lambda: fig15_pe_scaling(harness), rounds=1, iterations=1
    )

    for app in series:
        for ds, sweep in series[app].items():
            values = [sweep[p] for p in PE_SWEEP_FIG15]
            # Monotone non-decreasing in PEs (within simulator noise).
            for a, b in zip(values, values[1:]):
                assert b >= 0.95 * a, (app, ds)
            # Real parallel speedup by 64 PEs everywhere.
            assert sweep[64] > 3.0, (app, ds)
            # Never super-linear beyond noise.
            assert sweep[64] <= 64 * 1.05

    # As (fewest tasks) scales worse than the larger datasets (paper's
    # explicit observation for TC).  Quick mode only runs As.
    if "Pa" in series["TC"]:
        assert series["TC"]["As"][64] < series["TC"]["Pa"][64]

    text = render_series(
        "Fig 15: scaling vs 1 PE (8 kB c-map)",
        series,
        key_format=lambda pes: f"{pes}PE",
        value_format=lambda v: f"{v:5.1f}",
    )
    save_artifact("fig15.txt", text)
