"""§VII-D — large graphs and large patterns.

* D1: TC on Or with 20 PEs achieves a solid speedup over GraphZero-20T
  (paper: 2.5x).
* D2: k-CL for k in [5, 9] on Pa keeps winning at 20 PEs (paper:
  1.7-1.9x), and the c-map's 8-bit value covers patterns within 10
  vertices (beyond that FlexMiner falls back to SIU/SDU per §VII-D —
  exercised here via the value-width check).
"""

from repro.compiler import compile_pattern
from repro.graph import load_dataset
from repro.hw import FlexMinerConfig, HardwareCMap, simulate
from repro.patterns import k_clique


def test_d1_large_graph(benchmark, harness, save_artifact):
    speedup = benchmark.pedantic(
        lambda: harness.speedup("TC", "Or", num_pes=20),
        rounds=1,
        iterations=1,
    )
    assert speedup > 1.3
    save_artifact(
        "d1_large_graph.txt",
        f"TC on Or, 20-PE FlexMiner vs GraphZero-20T: {speedup:.2f}x "
        f"(paper: 2.5x)",
    )


def test_d2_large_patterns(benchmark, harness, save_artifact):
    def sweep():
        rows = {}
        graph = load_dataset("Pa")
        for k in range(5, 10):
            plan = compile_pattern(k_clique(k))
            report = simulate(
                graph, plan, FlexMinerConfig(num_pes=20)
            )
            from repro.bench import graphzero_time

            seconds, cpu = graphzero_time(
                graph, plan, harness.cpu_config, threads=20
            )
            assert report.counts == cpu.counts
            rows[k] = (seconds / report.seconds, report.total)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # FlexMiner keeps its edge for every large clique size.
    for k, (speedup, _) in rows.items():
        assert speedup > 1.0, k
    # Clique counts decrease with k on a sparse graph.
    counts = [rows[k][1] for k in sorted(rows)]
    assert all(a >= b for a, b in zip(counts, counts[1:]))

    lines = ["k-CL on Pa, 20-PE FlexMiner vs GraphZero-20T"]
    for k in sorted(rows):
        speedup, count = rows[k]
        lines.append(f"  k={k}: speedup={speedup:5.2f}x  cliques={count}")
    save_artifact("d2_large_patterns.txt", "\n".join(lines))


def test_d2_value_width_limit(benchmark):
    """The 8-bit c-map value covers DFS depths 0..7 only (§VII-D)."""

    def probe():
        cmap = HardwareCMap(256, value_bits=8)
        ok = cmap.try_insert([1, 2], depth=7)
        too_deep = cmap.try_insert([3], depth=8)
        return ok.accepted, too_deep.accepted

    accepted, rejected = benchmark.pedantic(probe, rounds=1, iterations=1)
    assert accepted and not rejected
