"""Fig. 7 — k-CL thread scaling on the CPU baseline.

The paper observes near-linear scaling up to the physical core count,
a slower slope once hyper-threading kicks in, and memory bandwidth that
keeps rising past the core count.
"""

from repro.bench import fig7_cpu_scaling


def test_fig7(benchmark, harness, save_artifact):
    series = benchmark.pedantic(
        lambda: fig7_cpu_scaling(harness), rounds=1, iterations=1
    )

    cores = harness.cpu_config.cores
    # Linear region: speedup at the core count ~= core count.
    assert series[cores]["speedup"] == 10.0
    # Hyper-threading region is sub-linear (Fig. 7 knee).
    assert series[20]["speedup"] < 20 * 0.8
    assert series[20]["speedup"] > series[cores]["speedup"]
    # Speedup is monotone in threads; bandwidth keeps rising past cores.
    threads = sorted(series)
    for a, b in zip(threads, threads[1:]):
        assert series[b]["speedup"] >= series[a]["speedup"]
    assert series[20]["bandwidth_gbs"] > series[cores]["bandwidth_gbs"]

    lines = ["Fig 7: 4-CL on Or, CPU model"]
    for t in threads:
        s = series[t]
        lines.append(
            f"  threads={t:<3d} speedup={s['speedup']:6.2f} "
            f"bandwidth={s['bandwidth_gbs']:6.2f} GB/s"
        )
    save_artifact("fig7.txt", "\n".join(lines))
