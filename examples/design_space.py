#!/usr/bin/env python
"""Design-space exploration with the cycle-level simulator.

An architect's workflow: sweep the accelerator's PE count and c-map size
for a fixed workload, look at where cycles go (compute vs memory
stalls, c-map fall-backs, NoC traffic), and read off the efficient
design point — reproducing in miniature the paper's §VII-C/§VII-E
analysis that settled on 64 PEs with an 8 kB c-map.

Run:  python examples/design_space.py
"""

from repro.compiler import compile_pattern
from repro.graph import load_dataset
from repro.hw import AreaModel, FlexMinerConfig, simulate
from repro.patterns import four_cycle


def main() -> None:
    graph = load_dataset("Pa")
    plan = compile_pattern(four_cycle())
    print(f"workload: SL-4cycle on {graph}\n")

    print("c-map size sweep (20 PEs):")
    base = None
    for cmap in (0, 1024, 4096, 8192, 16384):
        config = FlexMinerConfig(num_pes=20, cmap_bytes=cmap)
        report = simulate(graph, plan, config)
        if base is None:
            base = report.cycles
        area = AreaModel(config).pe_area_mm2
        label = "no c-map" if cmap == 0 else f"{cmap // 1024:>2d} kB"
        print(
            f"  {label:>8s}: {report.cycles:>10.0f} cycles "
            f"({base / report.cycles:4.2f}x)  "
            f"mem-stall {report.memory_bound_fraction * 100:4.1f}%  "
            f"NoC {report.noc_requests:>6d}  "
            f"PE {area:.3f} mm2"
        )

    print("\nPE count sweep (8 kB c-map):")
    one_pe = None
    for pes in (1, 2, 4, 8, 16, 32, 64):
        config = FlexMinerConfig(num_pes=pes)
        report = simulate(graph, plan, config)
        if one_pe is None:
            one_pe = report.cycles
        model = AreaModel(config)
        print(
            f"  {pes:>2d} PEs: {report.cycles:>10.0f} cycles "
            f"(scaling {one_pe / report.cycles:5.2f}x)  "
            f"imbalance {report.load_imbalance:4.2f}  "
            f"array {model.total_pe_area_mm2:5.2f} mm2 "
            f"({model.skylake_core_equivalents:4.2f} cores)"
        )

    print("\nPE count sweep with straggler-task splitting (deg/16):")
    one_pe = None
    for pes in (1, 16, 32, 64):
        config = FlexMinerConfig(num_pes=pes, task_split_degree=16)
        report = simulate(graph, plan, config)
        if one_pe is None:
            one_pe = report.cycles
        print(
            f"  {pes:>2d} PEs: {report.cycles:>10.0f} cycles "
            f"(scaling {one_pe / report.cycles:5.2f}x)  "
            f"imbalance {report.load_imbalance:4.2f}"
        )

    print(
        "\nreading: the c-map saturates within a few kB (paper: 4-8 kB);"
        "\none-task-per-root scaling is straggler-limited on scaled-down"
        "\ninputs, and splitting hub tasks restores it — the paper's"
        "\n64-PE, 8 kB design point sits at the knee of both curves."
    )


if __name__ == "__main__":
    main()
