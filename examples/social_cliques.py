#!/usr/bin/env python
"""Community cores in a social network: k-clique listing at scale.

Social-science applications (triad census, cohesive subgroups) count
cliques: a k-clique is a maximally cohesive group of k members.  This
example mines k-cliques for growing k on a social-style graph, shows the
orientation optimization at work (paper §V-C), and sizes the FlexMiner
configuration needed to beat the CPU baseline on this workload.

Run:  python examples/social_cliques.py
"""

from repro.bench import cpu_time_seconds
from repro.compiler import compile_pattern
from repro.engine import PatternAwareEngine
from repro.graph import power_law_cluster
from repro.hw import FlexMinerConfig, simulate
from repro.patterns import k_clique


def main() -> None:
    graph = power_law_cluster(1200, 8, 0.45, seed=17, name="social")
    print(f"network: {graph}\n")

    print("clique census (orientation-optimized plans):")
    print(f"  {'k':>2s} {'cliques':>10s} {'SIU iters':>12s} "
          f"{'CPU-20T':>10s}")
    for k in range(3, 8):
        plan = compile_pattern(k_clique(k))
        assert plan.oriented  # compiler auto-detected the clique
        result = PatternAwareEngine(graph, plan).run()
        seconds = cpu_time_seconds(result.counters)
        print(
            f"  {k:>2d} {result.counts[0]:>10d} "
            f"{result.counters.setop_iterations:>12d} "
            f"{seconds * 1e3:>8.2f}ms"
        )

    # How many PEs does FlexMiner need to overtake the 20-thread CPU?
    plan = compile_pattern(k_clique(4))
    cpu_seconds = cpu_time_seconds(PatternAwareEngine(graph, plan).run().counters)
    print("\n4-clique: FlexMiner PEs needed to beat the CPU baseline")
    for pes in (4, 10, 20, 40, 64):
        report = simulate(graph, plan, FlexMinerConfig(num_pes=pes))
        marker = " <- crossover" if report.seconds < cpu_seconds else ""
        print(
            f"  {pes:>2d} PEs: {report.seconds * 1e3:7.3f} ms "
            f"(speedup {cpu_seconds / report.seconds:5.2f}x){marker}"
        )


if __name__ == "__main__":
    main()
