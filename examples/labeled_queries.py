#!/usr/bin/env python
"""Labeled pattern queries on a protein-style network.

The paper's motivating PPI application labels proteins with their
function.  This example builds a labeled network and runs labeled
queries end to end: the compiler restricts symmetry breaking to the
label-preserving automorphisms, the engines add label checks to the
pruner, and the accelerator simulation honors the same plan.

Run:  python examples/labeled_queries.py
"""

from repro.compiler import compile_pattern, emit_ir
from repro.engine import mine
from repro.graph import assign_random_labels, power_law_cluster
from repro.hw import FlexMinerConfig, simulate
from repro.patterns import Pattern, triangle

FUNCTION_NAMES = ("kinase", "ligase", "receptor")


def main() -> None:
    base = power_law_cluster(500, 5, 0.5, seed=11, name="ppi")
    graph = assign_random_labels(base, len(FUNCTION_NAMES), seed=3)
    print(f"network: {graph}")
    for lab, name in enumerate(FUNCTION_NAMES):
        print(f"  {name:<9s}: {len(graph.vertices_with_label(lab))} proteins")

    # Query 1: fully labeled triangle — a kinase-ligase-receptor complex.
    complex_query = triangle().with_labels([0, 1, 2])
    plan = compile_pattern(complex_query)
    found = mine(graph, plan).counts[0]
    print(f"\nkinase-ligase-receptor triangles: {found}")
    print(f"(symmetry conditions: {plan.symmetry_conditions} — the "
          f"labeled triangle has fewer automorphisms to break)")

    # Query 2: wildcard — two kinases bridged by anything.
    bridge = Pattern(
        3, [(0, 1), (1, 2)], labels=[0, None, 0], name="kinase-bridge"
    )
    plan2 = compile_pattern(bridge)
    print(f"\nkinase-X-kinase bridges: {mine(graph, plan2).counts[0]}")
    print("\nexecution plan IR with label header:")
    print(emit_ir(plan2))

    # Same labeled plan on the simulated accelerator.
    report = simulate(graph, plan, FlexMinerConfig(num_pes=16))
    assert report.counts[0] == found
    print(f"FlexMiner 16-PE simulation agrees: {report.counts[0]} matches "
          f"in {report.cycles:.0f} cycles")

    # Label selectivity: compare against the unlabeled triangle count.
    unlabeled = mine(graph, compile_pattern(triangle())).counts[0]
    print(f"\nselectivity: {found}/{unlabeled} triangles survive the "
          f"label constraint ({found / max(unlabeled, 1):.1%})")


if __name__ == "__main__":
    main()
