#!/usr/bin/env python
"""Quickstart: mine a pattern three ways and simulate the accelerator.

Covers the full FlexMiner pipeline in one page:

1. build a data graph;
2. pick a pattern and let the compiler produce an execution plan
   (matching order, symmetry order, c-map hints — printable as IR);
3. mine with the software engine (the GraphZero-class baseline);
4. simulate the FlexMiner accelerator and compare.

Run:  python examples/quickstart.py
"""

from repro.bench import cpu_time_seconds
from repro.compiler import compile_pattern, emit_ir
from repro.engine import mine
from repro.graph import rmat
from repro.hw import FlexMinerConfig, simulate
from repro.patterns import four_cycle


def main() -> None:
    # 1. A power-law data graph (stand-in for a SNAP social network).
    graph = rmat(10, avg_degree=8.0, seed=42, name="demo")
    print(f"data graph : {graph}")

    # 2. Compile the 4-cycle pattern — the paper's running example.
    pattern = four_cycle()
    plan = compile_pattern(pattern)
    print(f"pattern    : {pattern}")
    print("\nexecution plan IR (paper Listing 1):")
    print(emit_ir(plan))

    # 3. Software mining (pattern-aware engine, frontier memoization on).
    result = mine(graph, plan)
    cpu_seconds = cpu_time_seconds(result.counters)
    print(f"matches    : {result.counts[0]}")
    print(
        f"CPU model  : {cpu_seconds * 1e3:.3f} ms on 20 threads "
        f"({result.counters.setop_iterations} SIU iterations of work)"
    )

    # 4. FlexMiner with 64 PEs and the default 8 kB c-map.
    report = simulate(graph, plan, FlexMinerConfig(num_pes=64))
    assert report.counts == result.counts, "hardware must agree!"
    print(f"\nFlexMiner 64-PE simulation:\n{report.summary()}")
    print(f"\nspeedup over the 20-thread CPU model: "
          f"{cpu_seconds / report.seconds:.2f}x")


if __name__ == "__main__":
    main()
