#!/usr/bin/env python
"""Motif counting on a protein-interaction-style network.

The paper's introduction motivates GPM with protein function prediction:
proteins with similar local interaction structure tend to share
functionality, and the structure is summarized by *motif counts* (k-MC).
This example builds a clustered network shaped like a protein-protein
interaction (PPI) graph, counts all 3- and 4-vertex motifs with the
multi-pattern engine, and derives the per-vertex "graphlet degree"
signature for a few proteins — the feature vector the bioinformatics
papers cited in the introduction use.

Run:  python examples/protein_motifs.py
"""

from collections import Counter

from repro.apps import motif_count
from repro.compiler import compile_motifs
from repro.engine import PatternAwareEngine
from repro.graph import power_law_cluster
from repro.patterns import motif_names


def main() -> None:
    # PPI-style network: power-law degrees + high clustering.
    graph = power_law_cluster(600, 4, 0.6, seed=5, name="ppi")
    print(f"network: {graph}\n")

    for k in (3, 4):
        result = motif_count(graph, k)
        names = motif_names(k)
        print(f"{k}-motif census:")
        for name, count in zip(names, result.counts):
            print(f"  {name:<16s}{count:>10d}")
        total = sum(result.counts)
        triangles_like = result.counts[-1]  # densest motif (clique)
        print(
            f"  -> {total} connected {k}-subgraphs, clique fraction "
            f"{triangles_like / total:.4f}\n"
        )

    # Graphlet-degree signature: per-protein motif participation.
    # Re-run with embedding collection on the 3-motifs and attribute
    # each occurrence to its member vertices.
    plan = compile_motifs(3)
    engine = PatternAwareEngine(graph, plan, collect=True)
    result = engine.run()
    signature: Counter = Counter()
    for emb in result.embeddings:
        for v in emb:
            signature[v] += 1
    top = signature.most_common(5)
    print("most structurally embedded proteins (3-motif participation):")
    for v, score in top:
        print(f"  protein {v:<5d} degree={graph.degree(v):<4d} "
              f"motif participation={score}")


if __name__ == "__main__":
    main()
